//! A socket-level fault interposer for the TCP backend.
//!
//! [`FaultProxy`] sits between donor clients and the server and applies
//! the delivery faults of a [`FaultPlan`] to the *actual bytes*:
//! dropped results vanish from the wire, duplicated results are sent
//! twice, corrupted results get a flipped checksum byte, and link
//! degradation becomes real added latency. Lifecycle faults stay
//! client-side (see [`super::client`]); this layer only mutates
//! transport.
//!
//! The client→server direction is parsed frame-by-frame (using only the
//! header-CRC-validated span, so already-corrupt bytes pass through
//! untouched); the server→client direction is pumped verbatim. Each
//! proxied connection dials upstream through the server
//! [`super::Directory`] at accept time, so clients reconnecting after a
//! server restart are transparently routed to the new address.

use super::wire::{parse_header, DecodeError, HEADER_LEN, SUBMIT_RESULT_TYPE};
use super::{Clock, Directory};
use crate::fault::{DeliveryAction, FaultInjector, FaultPlan, PlanInterpreter};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Modelled per-frame transfer time used to turn a link-degradation
/// factor into real latency, in scaled seconds.
const BASE_TRANSFER_SECS: f64 = 0.005;

/// The running proxy. Point clients at [`FaultProxy::addr`]; it dials
/// the upstream server through the directory given to `start`.
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
}

impl FaultProxy {
    /// Binds an ephemeral loopback port and starts proxying.
    pub fn start(
        upstream: Directory,
        plan: &FaultPlan,
        n_clients: usize,
        clock: Clock,
    ) -> io::Result<Self> {
        Self::start_traced(
            upstream,
            plan,
            n_clients,
            clock,
            crate::telemetry::Telemetry::disabled(),
        )
    }

    /// [`FaultProxy::start`] with a telemetry handle: every injected
    /// wire fault (drop / duplicate / corrupt) is recorded as a
    /// `wire_fault` trace event stamped with the proxy clock.
    pub fn start_traced(
        upstream: Directory,
        plan: &FaultPlan,
        n_clients: usize,
        clock: Clock,
        telemetry: crate::telemetry::Telemetry,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let injector = Arc::new(Mutex::new(PlanInterpreter::new(plan, n_clients)));
        let accept_thread = {
            let stop = stop.clone();
            thread::spawn(move || {
                accept_loop(&listener, &upstream, &injector, clock, &stop, &telemetry)
            })
        };
        Ok(Self {
            addr,
            stop,
            accept_thread,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Tears the proxy down (open connections are severed).
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: &Directory,
    injector: &Arc<Mutex<PlanInterpreter>>,
    clock: Clock,
    stop: &Arc<AtomicBool>,
    telemetry: &crate::telemetry::Telemetry,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client_side, _)) => {
                let upstream = upstream.clone();
                let injector = injector.clone();
                let stop = stop.clone();
                let telemetry = telemetry.clone();
                conns.push(thread::spawn(move || {
                    proxy_connection(client_side, &upstream, &injector, clock, &stop, &telemetry)
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(500));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
    for h in conns {
        let _ = h.join();
    }
}

fn proxy_connection(
    client_side: TcpStream,
    upstream: &Directory,
    injector: &Arc<Mutex<PlanInterpreter>>,
    clock: Clock,
    stop: &Arc<AtomicBool>,
    telemetry: &crate::telemetry::Telemetry,
) {
    // Dial upstream through the directory *now* — after a server
    // restart the directory holds the new address.
    let addr = upstream.origin();
    let Some(server_side) = addr.and_then(|a| TcpStream::connect(a).ok()) else {
        return; // upstream down: sever; the client backs off and retries
    };
    let _ = client_side.set_nodelay(true);
    let _ = server_side.set_nodelay(true);
    let (Ok(c2s_read), Ok(s2c_write)) = (client_side.try_clone(), client_side.try_clone()) else {
        return;
    };
    let (Ok(s2c_read), Ok(c2s_write)) = (server_side.try_clone(), server_side.try_clone()) else {
        return;
    };
    // Server→client: verbatim pump on a helper thread.
    let pump = {
        let stop = stop.clone();
        thread::spawn(move || raw_pump(s2c_read, s2c_write, &stop))
    };
    faulted_pump(c2s_read, c2s_write, injector, clock, stop, telemetry);
    // Sever both directions so the pump unblocks, then reap it.
    let _ = client_side.shutdown(std::net::Shutdown::Both);
    let _ = server_side.shutdown(std::net::Shutdown::Both);
    let _ = pump.join();
}

/// Copies bytes verbatim until EOF, error, or stop.
fn raw_pump(mut from: TcpStream, mut to: TcpStream, stop: &AtomicBool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(5)));
    let mut chunk = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) {
        match from.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if to.write_all(&chunk[..n]).is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Client→server: reassembles frame spans and applies delivery faults
/// to `SubmitResult` frames. Anything unparseable is forwarded raw —
/// the server's own CRC layer is the authority on corruption.
fn faulted_pump(
    mut from: TcpStream,
    mut to: TcpStream,
    injector: &Arc<Mutex<PlanInterpreter>>,
    clock: Clock,
    stop: &Arc<AtomicBool>,
    telemetry: &crate::telemetry::Telemetry,
) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(5)));
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) {
        match from.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        loop {
            let (frame_type, body_len) = match parse_header(&buf) {
                Ok(h) => h,
                Err(DecodeError::Incomplete) => break,
                Err(_) => {
                    // Desynced or already-corrupt input: stop parsing
                    // and forward everything raw from here on.
                    if to.write_all(&buf).is_err() {
                        return;
                    }
                    buf.clear();
                    break;
                }
            };
            let total = HEADER_LEN + body_len as usize + 4;
            if buf.len() < total {
                break;
            }
            let mut frame: Vec<u8> = buf.drain(..total).collect();
            let mut faulted_client = 0usize;
            let action = if frame_type == SUBMIT_RESULT_TYPE && body_len >= 8 {
                // Client id is the first body field (header-validated
                // span, so this offset is trustworthy).
                let client = u64::from_le_bytes(
                    frame[HEADER_LEN..HEADER_LEN + 8]
                        .try_into()
                        .expect("8 bytes"),
                ) as usize;
                faulted_client = client;
                injector
                    .lock()
                    .unwrap()
                    .delivery_action(client, clock.now())
            } else {
                DeliveryAction::Deliver
            };
            if !matches!(action, DeliveryAction::Deliver) {
                let name = match action {
                    DeliveryAction::Drop => "drop",
                    DeliveryAction::Duplicate => "duplicate",
                    DeliveryAction::Corrupt => "corrupt",
                    DeliveryAction::Deliver => unreachable!(),
                };
                telemetry.emit_at(
                    clock.now(),
                    crate::telemetry::EventKind::WireFault {
                        client: faulted_client,
                        action: name.to_string(),
                    },
                );
                telemetry.counter_add("net.wire_faults", 1);
            }
            // Link degradation: real latency per forwarded frame.
            let link = injector.lock().unwrap().link_scale(clock.now());
            if link > 1.0 {
                thread::sleep(clock.wall((link - 1.0) * BASE_TRANSFER_SECS));
            }
            let ok = match action {
                DeliveryAction::Deliver => to.write_all(&frame).is_ok(),
                DeliveryAction::Drop => true, // lost in transit
                DeliveryAction::Duplicate => {
                    to.write_all(&frame).is_ok() && to.write_all(&frame).is_ok()
                }
                DeliveryAction::Corrupt => {
                    // Flip the final body-CRC byte: ids stay readable,
                    // the server's CRC check routes it to the
                    // corrupted-result path deterministically.
                    let n = frame.len();
                    frame[n - 1] ^= 0xFF;
                    to.write_all(&frame).is_ok()
                }
            };
            if !ok {
                return;
            }
        }
    }
}
