//! Built-in demonstration problems.
//!
//! [`integration_problem`] is the framework's "hello world": numerical
//! integration of `4/(1+x²)` over `[0,1]` (which is π) by the midpoint
//! rule, partitioned into dynamically sized index ranges. It exercises
//! every framework feature — dynamic granularity, result folding,
//! redundant execution safety (units are pure) — with an output that is
//! trivially verifiable, so integration tests and the quickstart
//! example both build on it.

use crate::codec::{ByteReader, ByteWriter, WireCodec, WireError};
use crate::problem::{Algorithm, DataManager, Payload, Problem, TaskResult, UnitId, WorkUnit};
use std::sync::Arc;

/// Abstract ops charged per function evaluation (sets the
/// compute/communication ratio in the simulator).
pub const OPS_PER_POINT: f64 = 200.0;

struct IntegrationDm {
    n_points: u64,
    next_point: u64,
    issued_units: u64,
    received_units: u64,
    sum: f64,
    next_id: UnitId,
}

impl DataManager for IntegrationDm {
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit> {
        if self.next_point >= self.n_points {
            return None;
        }
        // Dynamic granularity: convert the ops hint into grid points.
        let points = ((hint_ops / OPS_PER_POINT) as u64).clamp(1, self.n_points);
        let lo = self.next_point;
        let hi = (lo + points).min(self.n_points);
        self.next_point = hi;
        self.issued_units += 1;
        let id = self.next_id;
        self.next_id += 1;
        Some(WorkUnit {
            id,
            // Range + total grid size: 24 bytes on a real wire.
            payload: Payload::new((lo, hi, self.n_points), 24),
            cost_ops: (hi - lo) as f64 * OPS_PER_POINT,
        })
    }

    fn accept_result(&mut self, result: TaskResult) {
        self.sum += result.payload.into_inner::<f64>();
        self.received_units += 1;
    }

    fn is_complete(&self) -> bool {
        self.next_point >= self.n_points && self.received_units == self.issued_units
    }

    fn final_output(&mut self) -> Payload {
        Payload::new(self.sum, 8)
    }
}

struct IntegrationAlgo;

impl Algorithm for IntegrationAlgo {
    fn compute(&self, unit: &WorkUnit) -> TaskResult {
        let &(lo, hi, n) = unit
            .payload
            .downcast_ref::<(u64, u64, u64)>()
            .expect("range");
        let h = 1.0 / n as f64;
        let mut acc = 0.0;
        for i in lo..hi {
            let x = (i as f64 + 0.5) * h;
            acc += 4.0 / (1.0 + x * x);
        }
        TaskResult {
            unit_id: unit.id,
            payload: Payload::new(acc * h, 8),
        }
    }
}

/// Wire codec for the integration problem: a unit is its `(lo, hi, n)`
/// range triple (the 24 bytes the payload always declared), a result is
/// one `f64` partial sum.
struct IntegrationCodec;

impl WireCodec for IntegrationCodec {
    fn encode_unit(&self, payload: &Payload) -> Result<Vec<u8>, WireError> {
        let &(lo, hi, n) = payload
            .downcast_ref::<(u64, u64, u64)>()
            .ok_or_else(|| WireError::new("integration unit payload is not a range triple"))?;
        let mut w = ByteWriter::new();
        w.u64(lo);
        w.u64(hi);
        w.u64(n);
        Ok(w.into_bytes())
    }

    fn decode_unit(&self, bytes: &[u8]) -> Result<Payload, WireError> {
        let mut r = ByteReader::new(bytes);
        let (lo, hi, n) = (r.u64()?, r.u64()?, r.u64()?);
        r.finish()?;
        Ok(Payload::new((lo, hi, n), bytes.len() as u64))
    }

    fn encode_result(&self, payload: &Payload) -> Result<Vec<u8>, WireError> {
        let &sum = payload
            .downcast_ref::<f64>()
            .ok_or_else(|| WireError::new("integration result payload is not an f64"))?;
        let mut w = ByteWriter::new();
        w.f64(sum);
        Ok(w.into_bytes())
    }

    fn decode_result(&self, bytes: &[u8]) -> Result<Payload, WireError> {
        let mut r = ByteReader::new(bytes);
        let sum = r.f64()?;
        r.finish()?;
        Ok(Payload::new(sum, bytes.len() as u64))
    }
}

/// Builds the π-integration demo problem over `n_points` grid points.
///
/// The exact answer is π; the midpoint rule with `n_points ≥ 10⁴` is
/// accurate to ~1e-9, so tests can assert against
/// `std::f64::consts::PI` with a loose tolerance.
pub fn integration_problem(n_points: u64) -> Problem {
    assert!(n_points > 0, "need at least one grid point");
    Problem::new(
        "pi-integration",
        Box::new(IntegrationDm {
            n_points,
            next_point: 0,
            issued_units: 0,
            received_units: 0,
            sum: 0.0,
            next_id: 0,
        }),
        Arc::new(IntegrationAlgo),
    )
    .with_setup_bytes(50_000) // modelled size of shipped algorithm code
    .with_codec(Arc::new(IntegrationCodec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerConfig;
    use crate::server::{Assignment, Server};

    #[test]
    fn sequential_drive_computes_pi() {
        let mut server = Server::new(SchedulerConfig::default());
        let pid = server.submit(integration_problem(100_000));
        let mut now = 0.0;
        loop {
            match server.request_work(0, now) {
                Assignment::Unit {
                    problem,
                    unit,
                    algorithm,
                } => {
                    let r = algorithm.compute(&unit);
                    now += 1.0;
                    server.submit_result(0, problem, r, now);
                }
                Assignment::Wait => now += 1.0,
                Assignment::Finished => break,
            }
        }
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
    }

    #[test]
    fn granularity_hint_controls_unit_size() {
        let mut dm = IntegrationDm {
            n_points: 1_000_000,
            next_point: 0,
            issued_units: 0,
            received_units: 0,
            sum: 0.0,
            next_id: 0,
        };
        let small = dm.next_unit(10_000.0 * OPS_PER_POINT).unwrap();
        let big = dm.next_unit(100_000.0 * OPS_PER_POINT).unwrap();
        assert!(big.cost_ops > 5.0 * small.cost_ops);
    }

    #[test]
    fn codec_round_trips_units_and_results() {
        let codec = IntegrationCodec;
        let unit = Payload::new((3u64, 900u64, 100_000u64), 24);
        let bytes = codec.encode_unit(&unit).unwrap();
        assert_eq!(bytes.len(), 24, "declared wire size is the real size");
        let back = codec.decode_unit(&bytes).unwrap();
        assert_eq!(
            back.downcast_ref::<(u64, u64, u64)>(),
            Some(&(3, 900, 100_000))
        );

        let result = Payload::new(0.25f64, 8);
        let bytes = codec.encode_result(&result).unwrap();
        assert_eq!(bytes.len(), 8);
        let back = codec.decode_result(&bytes).unwrap();
        assert_eq!(back.downcast_ref::<f64>(), Some(&0.25));

        // Truncated and trailing-garbage inputs are errors, not panics.
        assert!(codec.decode_unit(&bytes).is_err());
        let mut long = codec.encode_unit(&unit).unwrap();
        long.push(0);
        assert!(codec.decode_unit(&long).is_err());
    }

    #[test]
    fn unit_ids_are_unique_and_sequential() {
        let mut dm = IntegrationDm {
            n_points: 100,
            next_point: 0,
            issued_units: 0,
            received_units: 0,
            sum: 0.0,
            next_id: 0,
        };
        let a = dm.next_unit(10.0 * OPS_PER_POINT).unwrap();
        let b = dm.next_unit(10.0 * OPS_PER_POINT).unwrap();
        assert_eq!(a.id, 0);
        assert_eq!(b.id, 1);
    }
}
