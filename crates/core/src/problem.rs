//! The user-facing programming model: `Problem = DataManager + Algorithm`.
//!
//! Mirrors the paper's §2.1: "The user is required to extend two
//! classes to create a Problem to run on the system. The `DataManager`
//! class (in the server) specifies how the problem is to be partitioned
//! into units of work and the intermediate results put together […] The
//! `Algorithm` class (in the client) specifies the actual computation."
//!
//! Payloads are typed in-process values; since no real wire exists, the
//! Java system's serialisation is modelled by an explicit
//! `wire_bytes` declared on every payload (DESIGN.md, substitution
//! table: RMI control messages vs. raw-socket bulk transfers).

use crate::codec::WireCodec;
use crate::server::ProblemId;
use std::any::Any;
use std::sync::Arc;

/// Identifies a work unit within its problem.
pub type UnitId = u64;

/// A typed in-process payload with a modelled wire size.
pub struct Payload {
    data: Box<dyn Any + Send + Sync>,
    wire_bytes: u64,
}

impl Payload {
    /// Wraps a value, declaring how many bytes it would occupy on the
    /// wire (used by the simulated network; pick the size the real
    /// serialised form would have).
    pub fn new<T: Any + Send + Sync>(value: T, wire_bytes: u64) -> Self {
        Self {
            data: Box::new(value),
            wire_bytes,
        }
    }

    /// Declared wire size in bytes.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }

    /// Borrows the payload as `T`; `None` if the type does not match.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }

    /// Consumes the payload, extracting `T`.
    ///
    /// # Panics
    /// Panics on type mismatch — that is always a programming error in
    /// the problem definition, not a runtime condition.
    pub fn into_inner<T: Any>(self) -> T {
        *self.data.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "payload type mismatch: expected {}",
                std::any::type_name::<T>()
            )
        })
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload({} wire bytes)", self.wire_bytes)
    }
}

/// One unit of work, produced by a [`DataManager`].
#[derive(Debug)]
pub struct WorkUnit {
    /// Unit identifier, unique within its problem.
    pub id: UnitId,
    /// Input data for the computation.
    pub payload: Payload,
    /// Estimated cost in abstract ops (the scheduler's and simulator's
    /// common currency; see `gridsim::deployments` for the scale).
    pub cost_ops: f64,
}

/// The result of computing one unit.
#[derive(Debug)]
pub struct TaskResult {
    /// The unit this result answers.
    pub unit_id: UnitId,
    /// Output data.
    pub payload: Payload,
}

/// Client-side computation (paper: the `Algorithm` class).
///
/// Implementations must be pure functions of the unit payload: the
/// scheduler may execute the same unit on several donors (redundant
/// end-game dispatch, reissue after churn) and keeps whichever result
/// arrives first.
pub trait Algorithm: Send + Sync {
    /// Computes one unit.
    fn compute(&self, unit: &WorkUnit) -> TaskResult;
}

/// Server-side problem decomposition (paper: the `DataManager` class).
///
/// Supports *staged* problems: `next_unit` may return `None` while
/// `is_complete()` is still false, meaning no unit can be issued until
/// more results arrive (e.g. DPRml's stage barrier). The server polls
/// again after the next result.
pub trait DataManager: Send {
    /// Produces the next unit, or `None` if nothing can be issued right
    /// now. `hint_ops` is the scheduler's dynamic-granularity hint: a
    /// unit of roughly this cost keeps the requesting donor busy for
    /// the configured target time. Managers with fixed decompositions
    /// may ignore it.
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit>;

    /// Folds one result back in. Results arrive exactly once per unit
    /// (the server deduplicates redundant executions).
    fn accept_result(&mut self, result: TaskResult);

    /// Whether every unit has been issued *and* every result folded in.
    fn is_complete(&self) -> bool;

    /// Takes the final combined output. Called once, after
    /// [`DataManager::is_complete`] returns true.
    fn final_output(&mut self) -> Payload;

    /// Hands the manager a telemetry handle for its problem, so it can
    /// record application-level events (DPRml stage boundaries) and
    /// metrics (DSEARCH chunk sizes). Called by the server when the
    /// problem is submitted or telemetry is installed later; the
    /// default implementation ignores it, so existing managers are
    /// unaffected.
    fn attach_telemetry(&mut self, telemetry: crate::telemetry::Telemetry, problem: ProblemId) {
        let _ = (telemetry, problem);
    }
}

/// A self-contained distributed computation (paper: the `Problem`
/// object handed to the server).
pub struct Problem {
    /// Human-readable name, used in reports.
    pub name: String,
    /// Server-side decomposition logic.
    pub data_manager: Box<dyn DataManager>,
    /// Client-side computation, shared by every donor.
    pub algorithm: Arc<dyn Algorithm>,
    /// One-time download each client performs before its first unit
    /// (the Java system ships the Algorithm class and problem data).
    pub setup_bytes: u64,
    /// Payload serializer for the real TCP backend. `None` limits the
    /// problem to the in-process backends (sim, threads).
    pub codec: Option<Arc<dyn WireCodec>>,
}

impl Problem {
    /// Bundles a data manager and algorithm into a problem.
    pub fn new(
        name: &str,
        data_manager: Box<dyn DataManager>,
        algorithm: Arc<dyn Algorithm>,
    ) -> Self {
        Self {
            name: name.to_string(),
            data_manager,
            algorithm,
            setup_bytes: 0,
            codec: None,
        }
    }

    /// Sets the per-client setup download size.
    pub fn with_setup_bytes(mut self, bytes: u64) -> Self {
        self.setup_bytes = bytes;
        self
    }

    /// Registers the payload serializer that lets the problem run on
    /// the TCP backend.
    pub fn with_codec(mut self, codec: Arc<dyn WireCodec>) -> Self {
        self.codec = Some(codec);
        self
    }
}

impl std::fmt::Debug for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Problem")
            .field("name", &self.name)
            .field("setup_bytes", &self.setup_bytes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trips_typed_values() {
        let p = Payload::new(vec![1u32, 2, 3], 12);
        assert_eq!(p.wire_bytes(), 12);
        assert_eq!(p.downcast_ref::<Vec<u32>>(), Some(&vec![1, 2, 3]));
        assert!(p.downcast_ref::<String>().is_none());
        assert_eq!(p.into_inner::<Vec<u32>>(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "payload type mismatch")]
    fn wrong_downcast_panics_with_type_name() {
        Payload::new(5u64, 8).into_inner::<String>();
    }

    #[test]
    fn problem_builder_sets_fields() {
        struct NullAlgo;
        impl Algorithm for NullAlgo {
            fn compute(&self, unit: &WorkUnit) -> TaskResult {
                TaskResult {
                    unit_id: unit.id,
                    payload: Payload::new((), 0),
                }
            }
        }
        struct NullDm;
        impl DataManager for NullDm {
            fn next_unit(&mut self, _hint: f64) -> Option<WorkUnit> {
                None
            }
            fn accept_result(&mut self, _r: TaskResult) {}
            fn is_complete(&self) -> bool {
                true
            }
            fn final_output(&mut self) -> Payload {
                Payload::new((), 0)
            }
        }
        let p = Problem::new("demo", Box::new(NullDm), Arc::new(NullAlgo)).with_setup_bytes(1024);
        assert_eq!(p.name, "demo");
        assert_eq!(p.setup_bytes, 1024);
    }
}
