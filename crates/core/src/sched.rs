//! The adaptive scheduler (paper ref \[12\]: "Adaptive scheduling
//! across a distributed computation platform").
//!
//! Three cooperating mechanisms, each independently switchable so the
//! ablation benches can isolate their contributions:
//!
//! 1. **Dynamic granularity** — each donor's next unit is sized so its
//!    *estimated* service time hits a target (fast donors get big
//!    units, slow donors small ones; paper §3.1: "parallel granularity
//!    is dynamically controlled during each search to match the
//!    processing abilities of the current set of donor machines").
//! 2. **Adaptive throughput tracking** — an EWMA of each client's
//!    observed end-to-end ops/second feeds the granularity calculation
//!    and straggler detection.
//! 3. **Fault tolerance / end-game** — units leased to a donor carry a
//!    deadline; expired leases are reissued (donor churn), and when a
//!    problem has no fresh units left, in-flight units are redundantly
//!    dispatched to idle donors so one slow machine cannot stall the
//!    tail (first result wins).

use crate::problem::UnitId;
use biodist_util::rng::{Rng, SplitMix64};
use biodist_util::stats::Ewma;
use std::collections::{HashMap, HashSet, VecDeque};

/// Identifies a donor machine / client.
pub type ClientId = usize;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerConfig {
    /// Target service time per unit, in seconds.
    pub target_unit_secs: f64,
    /// Smallest unit the granularity control may request, in ops.
    pub min_unit_ops: f64,
    /// Largest unit the granularity control may request, in ops.
    pub max_unit_ops: f64,
    /// EWMA smoothing for client throughput estimates.
    pub ewma_alpha: f64,
    /// Throughput prior for clients with no history (ops/second).
    pub prior_ops_per_sec: f64,
    /// Lease duration as a multiple of the unit's estimated service
    /// time (expired leases are reissued).
    pub lease_factor: f64,
    /// Minimum absolute lease duration, seconds.
    pub lease_min_secs: f64,
    /// Maximum number of lease-backoff doublings applied to a unit
    /// whose lease keeps expiring (each expiry doubles the next lease
    /// until this cap; see [`Scheduler::lease_deadline_backed_off`]).
    pub max_backoff_doublings: u32,
    /// Absolute ceiling on any lease duration, seconds. Bounds the
    /// exponential backoff so a unit with a wildly wrong cost estimate
    /// can never be parked on one donor for an unbounded time.
    pub max_lease_secs: f64,
    /// Fractional jitter on lease durations (0 = none): the deadline
    /// used by the server is spread over `±frac` of the nominal lease
    /// so a batch of units assigned in the same instant does not expire
    /// in the same instant and thundering-herd the reissue queue. The
    /// jitter is a pure hash of `(seed, client, unit, expiries)` — no
    /// generator state — so deadlines are identical across backends
    /// regardless of call order.
    pub lease_jitter_frac: f64,
    /// Seed for the deterministic lease jitter.
    pub lease_jitter_seed: u64,
    /// Enable dynamic granularity (off = every hint is
    /// `prior_ops_per_sec × target_unit_secs`).
    pub enable_dynamic_granularity: bool,
    /// Enable per-client throughput adaptation (off = all clients
    /// assumed to run at the prior speed).
    pub enable_adaptive: bool,
    /// Enable redundant end-game dispatch of in-flight units.
    pub enable_redundant_dispatch: bool,
    /// Maximum simultaneous executions of one unit (≥ 1).
    pub max_redundancy: u32,
    /// Enable affinity-aware placement: prefer issuing a unit to a
    /// donor already caching its data chunks, falling back to the
    /// fair-share order when no candidate matches.
    pub enable_affinity: bool,
    /// Maximum chunk digests remembered per donor (oldest forgotten
    /// first — mirrors the donor's own LRU, approximately).
    pub affinity_capacity: usize,
    /// How many units the server pre-pulls per problem so affinity has
    /// candidates to choose among. `1` disables the lookahead pool
    /// (pull-on-demand, the pre-affinity behaviour).
    pub affinity_lookahead: usize,
    /// K-way quorum issuance: units first issued to an *untrusted*
    /// donor are cross-checked on `quorum_k` distinct donors, and the
    /// combine path only runs once a quorum of byte-identical results
    /// agrees. `1` disables quorum (every result is trusted — the
    /// paper's behaviour).
    pub quorum_k: u32,
    /// Byte-identical votes required to agree (`0` = majority of
    /// `quorum_k`, i.e. `k/2 + 1`). Clamped to `quorum_k`.
    pub quorum_votes: u32,
    /// Quorum agreements a donor needs before it is trusted and
    /// graduates to single-issue (its results skip cross-checking).
    pub reputation_threshold: u32,
    /// Enable speculative re-issue of tail units: once fresh work is
    /// exhausted, in-flight units may be re-dispatched beyond the plain
    /// redundant-dispatch cap (up to [`Self::speculative_max_copies`])
    /// to cut the end-of-run makespan droop (Figure 1).
    pub enable_speculative_reissue: bool,
    /// Ceiling on simultaneous copies of one unit when speculative
    /// tail re-issue is enabled.
    pub speculative_max_copies: u32,
    /// Enable the streaming health detector: per-donor normalized
    /// service-time EWMAs flag stragglers live, flagged donors lose
    /// their affinity preference, and units they hold become eligible
    /// for speculative re-issue *immediately* (not only in the
    /// end-game tail). Off by default: with the detector disabled every
    /// trace and scheduling decision is byte-identical to the
    /// pre-detector behaviour.
    pub enable_health_detector: bool,
    /// Flag a donor when its recent normalized service time reaches
    /// this multiple of its baseline (see [`crate::health`]).
    pub health_straggler_ratio: f64,
    /// Clear a flagged donor when the ratio falls back to this value.
    pub health_clear_ratio: f64,
    /// Completions required before a donor may be flagged.
    pub health_min_observations: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            target_unit_secs: 60.0,
            min_unit_ops: 1e5,
            max_unit_ops: 1e10,
            ewma_alpha: 0.3,
            prior_ops_per_sec: 1.0e7, // one PIII-1000 (gridsim scale)
            lease_factor: 4.0,
            lease_min_secs: 120.0,
            max_backoff_doublings: 6,
            max_lease_secs: 86_400.0,
            lease_jitter_frac: 0.1,
            lease_jitter_seed: 0,
            enable_dynamic_granularity: true,
            enable_adaptive: true,
            enable_redundant_dispatch: true,
            max_redundancy: 2,
            enable_affinity: true,
            affinity_capacity: 4096,
            affinity_lookahead: 1,
            quorum_k: 1,
            quorum_votes: 0,
            reputation_threshold: 4,
            enable_speculative_reissue: false,
            speculative_max_copies: 3,
            enable_health_detector: false,
            health_straggler_ratio: 3.0,
            health_clear_ratio: 1.5,
            health_min_observations: 3,
        }
    }
}

impl SchedulerConfig {
    /// A naive baseline for the ablations: fixed granularity, no
    /// adaptation, no redundancy (lease reissue stays on — without it a
    /// single departed donor deadlocks any run, which is not an
    /// interesting comparison point).
    pub fn naive() -> Self {
        Self {
            enable_dynamic_granularity: false,
            enable_adaptive: false,
            enable_redundant_dispatch: false,
            ..Self::default()
        }
    }
}

/// Per-client adaptive state.
#[derive(Debug, Clone)]
struct ClientState {
    throughput: Ewma,
    units_completed: u64,
}

/// Per-donor reputation: how often the donor's results agreed with a
/// byte-identical quorum, and whether it has graduated to single-issue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ReputationState {
    /// Consecutive-run quorum agreements since the last dispute.
    agreements: u64,
    /// Lifetime disputes (result disagreed with a quorum, or arrived
    /// corrupted).
    disputes: u64,
    /// Whether the donor's results currently skip cross-checking.
    trusted: bool,
}

/// Plain-data snapshot of the reputation map, checkpointed alongside
/// [`SchedSnapshot`] so a recovered server keeps trusting the donors
/// that earned it (and keeps cross-checking the ones that did not).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReputationSnapshot {
    /// `(client, agreements, disputes, trusted)`, sorted by client id
    /// so snapshots are byte-stable for a given state.
    pub clients: Vec<(ClientId, u64, u64, bool)>,
}

/// Which chunk digests a donor is believed to hold, insertion-ordered
/// so the oldest belief is forgotten first when the cap is reached.
#[derive(Debug, Clone, Default)]
struct AffinityState {
    order: VecDeque<u64>,
    set: HashSet<u64>,
}

impl AffinityState {
    fn note(&mut self, digest: u64, cap: usize) {
        if cap == 0 || self.set.contains(&digest) {
            return;
        }
        while self.order.len() >= cap {
            if let Some(old) = self.order.pop_front() {
                self.set.remove(&old);
            }
        }
        self.order.push_back(digest);
        self.set.insert(digest);
    }
}

/// Plain-data snapshot of the affinity map (which donor holds which
/// chunk digests), checkpointed alongside [`SchedSnapshot`] so a
/// recovered server resumes placing work where the data already lives.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffinitySnapshot {
    /// `(client, digests in insertion order)`, sorted by client id so
    /// snapshots are byte-stable for a given state.
    pub clients: Vec<(ClientId, Vec<u64>)>,
}

/// A plain-data snapshot of the scheduler's adaptive state, written to
/// the checkpoint log so a restarted server resumes with warm speed
/// estimates instead of the cold prior.
///
/// Only the current EWMA value survives, not the full observation
/// history: after recovery the estimate re-converges from that value at
/// the configured `ewma_alpha`, which is exactly the behaviour of a
/// freshly-observed client at that speed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedSnapshot {
    /// `(client, estimated ops/second, units completed)`, sorted by
    /// client id so snapshots are byte-stable for a given state.
    pub clients: Vec<(ClientId, f64, u64)>,
}

/// The scheduler: client statistics + policy decisions.
///
/// The scheduler is deliberately free of any I/O or clock source; both
/// backends feed it observations and query decisions.
#[derive(Debug)]
pub struct Scheduler {
    cfg: SchedulerConfig,
    clients: HashMap<ClientId, ClientState>,
    affinity: HashMap<ClientId, AffinityState>,
    reputation: HashMap<ClientId, ReputationState>,
    /// Donors currently flagged as stragglers by the health engine.
    /// Maintained by the server; empty unless the detector is enabled.
    health_flagged: HashSet<ClientId>,
}

impl Scheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(cfg: SchedulerConfig) -> Self {
        assert!(
            cfg.target_unit_secs > 0.0,
            "target unit time must be positive"
        );
        assert!(cfg.min_unit_ops > 0.0 && cfg.min_unit_ops <= cfg.max_unit_ops);
        assert!(cfg.max_redundancy >= 1);
        assert!(cfg.quorum_k >= 1, "quorum_k must be at least 1");
        assert!(cfg.speculative_max_copies >= 1);
        Self {
            cfg,
            clients: HashMap::new(),
            affinity: HashMap::new(),
            reputation: HashMap::new(),
            health_flagged: HashSet::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Estimated throughput of `client` in ops/second.
    pub fn estimated_speed(&self, client: ClientId) -> f64 {
        if !self.cfg.enable_adaptive {
            return self.cfg.prior_ops_per_sec;
        }
        self.clients
            .get(&client)
            .and_then(|c| c.throughput.value())
            .unwrap_or(self.cfg.prior_ops_per_sec)
    }

    /// The granularity hint for `client`'s next unit, in ops.
    pub fn granularity_hint(&self, client: ClientId) -> f64 {
        let speed = if self.cfg.enable_dynamic_granularity {
            self.estimated_speed(client)
        } else {
            self.cfg.prior_ops_per_sec
        };
        (speed * self.cfg.target_unit_secs).clamp(self.cfg.min_unit_ops, self.cfg.max_unit_ops)
    }

    /// Lease deadline for a unit of `cost_ops` assigned to `client` at
    /// time `now`.
    pub fn lease_deadline(&self, client: ClientId, cost_ops: f64, now: f64) -> f64 {
        self.lease_deadline_backed_off(client, cost_ops, now, 0)
    }

    /// Lease deadline with exponential backoff: every prior expiry of
    /// the unit doubles the lease, so a unit whose true cost exceeds the
    /// estimate converges instead of bouncing between reissue and the
    /// same slow donor forever.
    ///
    /// The growth is clamped twice: at most
    /// [`SchedulerConfig::max_backoff_doublings`] doublings (and never
    /// more than 63, so the shift cannot overflow regardless of
    /// configuration), and the resulting duration never exceeds
    /// [`SchedulerConfig::max_lease_secs`].
    pub fn lease_deadline_backed_off(
        &self,
        client: ClientId,
        cost_ops: f64,
        now: f64,
        prior_expiries: u32,
    ) -> f64 {
        let est = cost_ops / self.estimated_speed(client);
        let base = (est * self.cfg.lease_factor).max(self.cfg.lease_min_secs);
        let doublings = prior_expiries.min(self.cfg.max_backoff_doublings).min(63);
        let factor = (1u64 << doublings) as f64;
        now + (base * factor).min(self.cfg.max_lease_secs)
    }

    /// [`Scheduler::lease_deadline_backed_off`] with deterministic
    /// per-unit jitter: the lease duration is scaled by a factor in
    /// `[1 − jitter, 1 + jitter)` drawn from a stateless hash of
    /// `(lease_jitter_seed, client, unit, prior_expiries)`. Units
    /// assigned in the same scheduling instant therefore expire spread
    /// out instead of stampeding `check_timeouts` at once, and the same
    /// `(seed, client, unit, expiries)` tuple always jitters the same
    /// way on every backend.
    pub fn lease_deadline_jittered(
        &self,
        client: ClientId,
        cost_ops: f64,
        now: f64,
        prior_expiries: u32,
        unit: UnitId,
    ) -> f64 {
        let nominal = self.lease_deadline_backed_off(client, cost_ops, now, prior_expiries);
        let frac = self.cfg.lease_jitter_frac;
        if frac <= 0.0 {
            return nominal;
        }
        let mut h = SplitMix64::new(
            self.cfg
                .lease_jitter_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (client as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ unit.wrapping_mul(0x1000_0000_01B3)
                ^ u64::from(prior_expiries).wrapping_mul(0xCBF2_9CE4_8422_2325),
        );
        let spread = 1.0 + frac * (2.0 * h.next_f64() - 1.0);
        let duration = ((nominal - now) * spread).min(self.cfg.max_lease_secs);
        now + duration
    }

    /// Records a completed unit: `cost_ops` of work observed to take
    /// `elapsed_secs` end-to-end on `client`.
    pub fn record_completion(&mut self, client: ClientId, cost_ops: f64, elapsed_secs: f64) {
        let elapsed = elapsed_secs.max(1e-9);
        let state = self.clients.entry(client).or_insert_with(|| ClientState {
            throughput: Ewma::new(self.cfg.ewma_alpha),
            units_completed: 0,
        });
        state.throughput.update(cost_ops / elapsed);
        state.units_completed += 1;
    }

    /// Forgets a client (it left the pool). Reputation is forgotten
    /// too: a donor id that rejoins after departure starts over as an
    /// unknown, cross-checked donor — the safe direction.
    pub fn forget_client(&mut self, client: ClientId) {
        self.clients.remove(&client);
        self.affinity.remove(&client);
        self.reputation.remove(&client);
        self.health_flagged.remove(&client);
    }

    /// Records that `client` now holds chunks with these digests (it
    /// was just served them, or a backend modelled the transfer).
    pub fn note_chunks(&mut self, client: ClientId, digests: &[u64]) {
        if !self.cfg.enable_affinity || digests.is_empty() {
            return;
        }
        let state = self.affinity.entry(client).or_default();
        for &d in digests {
            state.note(d, self.cfg.affinity_capacity);
        }
    }

    /// How many of `digests` the scheduler believes `client` holds.
    /// Zero when affinity is disabled, so callers can use the score
    /// directly without re-checking the flag.
    pub fn affinity_score(&self, client: ClientId, digests: &[u64]) -> usize {
        if !self.cfg.enable_affinity || self.health_flagged.contains(&client) {
            // A flagged straggler loses its data-locality preference:
            // feeding it the units it is best placed for just lengthens
            // the tail it is already dragging.
            return 0;
        }
        match self.affinity.get(&client) {
            Some(state) => digests.iter().filter(|d| state.set.contains(d)).count(),
            None => 0,
        }
    }

    /// Total chunk digests tracked for `client`.
    pub fn affinity_entries(&self, client: ClientId) -> usize {
        self.affinity.get(&client).map_or(0, |s| s.order.len())
    }

    /// Captures the affinity map for the checkpoint log.
    pub fn affinity_snapshot(&self) -> AffinitySnapshot {
        let mut clients: Vec<_> = self
            .affinity
            .iter()
            .map(|(&id, st)| (id, st.order.iter().copied().collect::<Vec<u64>>()))
            .collect();
        clients.sort_unstable_by_key(|&(id, _)| id);
        AffinitySnapshot { clients }
    }

    /// Replaces the affinity map with a recovered snapshot (entries are
    /// re-capped against the current configuration).
    pub fn restore_affinity(&mut self, snap: &AffinitySnapshot) {
        self.affinity.clear();
        for (id, digests) in &snap.clients {
            self.note_chunks(*id, digests);
        }
    }

    /// Publishes `client`'s adaptive state as telemetry gauges
    /// (`sched.ops_per_sec.c<id>`, `sched.units_completed.c<id>`). The
    /// server calls this after each recorded completion; a disabled
    /// handle makes it free.
    pub fn export_client_metrics(&self, client: ClientId, telemetry: &crate::telemetry::Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.gauge_set(
            &format!("sched.ops_per_sec.c{client}"),
            self.estimated_speed(client),
        );
        telemetry.gauge_set(
            &format!("sched.units_completed.c{client}"),
            self.units_completed(client) as f64,
        );
    }

    /// Units completed by `client`.
    pub fn units_completed(&self, client: ClientId) -> u64 {
        self.clients
            .get(&client)
            .map(|c| c.units_completed)
            .unwrap_or(0)
    }

    /// Whether redundant dispatch is allowed for a unit already running
    /// on `active_copies` donors.
    pub fn may_dispatch_redundant(&self, active_copies: u32) -> bool {
        self.cfg.enable_redundant_dispatch && active_copies < self.cfg.max_redundancy
    }

    /// Whether speculative tail re-issue may add another copy of a unit
    /// already running on `active_copies` donors. Only consulted once
    /// fresh work is exhausted (the server's end-game pass).
    pub fn may_dispatch_speculative(&self, active_copies: u32) -> bool {
        self.cfg.enable_speculative_reissue && active_copies < self.cfg.speculative_max_copies
    }

    /// Whether the *live* straggler path may add another copy of a unit
    /// already running on `active_copies` donors: requires the health
    /// detector, and shares the speculative copy ceiling. Consulted for
    /// units held by a flagged donor even while fresh work remains.
    pub fn may_dispatch_speculative_live(&self, active_copies: u32) -> bool {
        self.cfg.enable_health_detector && active_copies < self.cfg.speculative_max_copies
    }

    /// Marks or clears `client`'s straggler flag (driven by the
    /// server's health engine).
    pub fn set_health_flag(&mut self, client: ClientId, flagged: bool) {
        if flagged {
            self.health_flagged.insert(client);
        } else {
            self.health_flagged.remove(&client);
        }
    }

    /// Whether `client` is currently flagged as a straggler.
    pub fn is_health_flagged(&self, client: ClientId) -> bool {
        self.health_flagged.contains(&client)
    }

    /// Whether K-way quorum issuance is configured at all.
    pub fn quorum_enabled(&self) -> bool {
        self.cfg.quorum_k > 1
    }

    /// Byte-identical votes a quorum needs to agree: the configured
    /// `quorum_votes`, or a majority of `quorum_k` when left at 0,
    /// clamped to `[1, quorum_k]`.
    pub fn required_votes(&self) -> u32 {
        let v = if self.cfg.quorum_votes == 0 {
            self.cfg.quorum_k / 2 + 1
        } else {
            self.cfg.quorum_votes
        };
        v.clamp(1, self.cfg.quorum_k)
    }

    /// How many distinct donors a unit first issued to `client` must
    /// run on: 1 when quorum is disabled or the donor has earned trust,
    /// `quorum_k` for unknown or previously-disputed donors.
    pub fn required_copies(&self, client: ClientId) -> u32 {
        if self.cfg.quorum_k <= 1 || self.is_trusted(client) {
            1
        } else {
            self.cfg.quorum_k
        }
    }

    /// Whether `client` has graduated to single-issue.
    pub fn is_trusted(&self, client: ClientId) -> bool {
        self.reputation.get(&client).is_some_and(|r| r.trusted)
    }

    /// `(agreements since last dispute, lifetime disputes)` for
    /// `client`.
    pub fn reputation_counts(&self, client: ClientId) -> (u64, u64) {
        self.reputation
            .get(&client)
            .map_or((0, 0), |r| (r.agreements, r.disputes))
    }

    /// Records that `client`'s result agreed with a byte-identical
    /// quorum. Returns `true` when this crosses the trust threshold and
    /// promotes the donor to single-issue.
    pub fn note_quorum_agreement(&mut self, client: ClientId) -> bool {
        let threshold = u64::from(self.cfg.reputation_threshold.max(1));
        let r = self.reputation.entry(client).or_default();
        r.agreements += 1;
        if !r.trusted && r.agreements >= threshold {
            r.trusted = true;
            return true;
        }
        false
    }

    /// Records that `client`'s result disagreed with a byte-identical
    /// quorum: its agreement streak resets and it goes back to being
    /// cross-checked. (Transport corruption deliberately does *not*
    /// land here — a bad link is the wire's fault, not the donor's.)
    /// Returns `true` when the donor was trusted and is hereby demoted.
    pub fn note_dispute(&mut self, client: ClientId) -> bool {
        let r = self.reputation.entry(client).or_default();
        r.disputes += 1;
        r.agreements = 0;
        std::mem::replace(&mut r.trusted, false)
    }

    /// Captures the reputation map for the checkpoint log.
    pub fn reputation_snapshot(&self) -> ReputationSnapshot {
        let mut clients: Vec<_> = self
            .reputation
            .iter()
            .map(|(&id, r)| (id, r.agreements, r.disputes, r.trusted))
            .collect();
        clients.sort_unstable_by_key(|&(id, ..)| id);
        ReputationSnapshot { clients }
    }

    /// Replaces the reputation map with a recovered snapshot. Entries
    /// claiming trust without the agreements to back it (e.g. after the
    /// threshold was raised between runs) are restored demoted.
    pub fn restore_reputation(&mut self, snap: &ReputationSnapshot) {
        let threshold = u64::from(self.cfg.reputation_threshold.max(1));
        self.reputation.clear();
        for &(id, agreements, disputes, trusted) in &snap.clients {
            self.reputation.insert(
                id,
                ReputationState {
                    agreements,
                    disputes,
                    trusted: trusted && agreements >= threshold,
                },
            );
        }
    }

    /// Captures the adaptive state for the checkpoint log.
    pub fn snapshot(&self) -> SchedSnapshot {
        let mut clients: Vec<_> = self
            .clients
            .iter()
            .map(|(&id, st)| {
                let speed = st.throughput.value().unwrap_or(self.cfg.prior_ops_per_sec);
                (id, speed, st.units_completed)
            })
            .collect();
        clients.sort_unstable_by_key(|&(id, _, _)| id);
        SchedSnapshot { clients }
    }

    /// Replaces the adaptive state with a recovered snapshot. Entries
    /// with a non-finite or non-positive speed are dropped rather than
    /// poisoning the estimates (the audit would flag them otherwise).
    pub fn restore(&mut self, snap: &SchedSnapshot) {
        self.clients.clear();
        for &(id, speed, units) in &snap.clients {
            if !speed.is_finite() || speed <= 0.0 {
                continue;
            }
            let mut throughput = Ewma::new(self.cfg.ewma_alpha);
            throughput.update(speed);
            self.clients.insert(
                id,
                ClientState {
                    throughput,
                    units_completed: units,
                },
            );
        }
    }

    /// Audits the scheduler's internal invariants, returning one
    /// message per violation (empty = healthy). Checked by the chaos
    /// harness after every fault-injected run:
    ///
    /// * every tracked client's EWMA speed estimate is finite and
    ///   positive (a NaN or zero estimate would poison granularity and
    ///   lease sizing for the rest of the run);
    /// * every granularity hint lies inside the configured
    ///   `[min_unit_ops, max_unit_ops]` bounds.
    pub fn audit(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for (&id, state) in &self.clients {
            if let Some(speed) = state.throughput.value() {
                if !speed.is_finite() || speed <= 0.0 {
                    violations.push(format!(
                        "client {id}: EWMA speed estimate {speed} is not finite and positive"
                    ));
                }
            }
            let hint = self.granularity_hint(id);
            if !(hint >= self.cfg.min_unit_ops && hint <= self.cfg.max_unit_ops) {
                violations.push(format!(
                    "client {id}: granularity hint {hint} outside [{}, {}]",
                    self.cfg.min_unit_ops, self.cfg.max_unit_ops
                ));
            }
        }
        let threshold = u64::from(self.cfg.reputation_threshold.max(1));
        for (&id, r) in &self.reputation {
            if r.trusted && r.agreements < threshold {
                violations.push(format!(
                    "client {id}: trusted with only {} agreements (threshold {threshold})",
                    r.agreements
                ));
            }
        }
        for (&id, state) in &self.affinity {
            if state.order.len() != state.set.len() {
                violations.push(format!(
                    "client {id}: affinity order/set desynchronised ({} vs {})",
                    state.order.len(),
                    state.set.len()
                ));
            }
            if state.order.len() > self.cfg.affinity_capacity {
                violations.push(format!(
                    "client {id}: {} affinity entries exceed capacity {}",
                    state.order.len(),
                    self.cfg.affinity_capacity
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_client_gets_prior_based_hint() {
        let s = Scheduler::new(SchedulerConfig::default());
        let hint = s.granularity_hint(0);
        assert!((hint - 1.0e7 * 60.0).abs() < 1e-6);
    }

    #[test]
    fn fast_clients_get_bigger_units() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        // Client 1 observed at 2e7 ops/s, client 2 at 2e6 ops/s.
        for _ in 0..10 {
            s.record_completion(1, 2.0e7, 1.0);
            s.record_completion(2, 2.0e6, 1.0);
        }
        let h1 = s.granularity_hint(1);
        let h2 = s.granularity_hint(2);
        assert!(h1 > 5.0 * h2, "fast client hint {h1} vs slow {h2}");
    }

    #[test]
    fn hints_respect_bounds() {
        let cfg = SchedulerConfig {
            min_unit_ops: 1e6,
            max_unit_ops: 5e6,
            ..Default::default()
        };
        let mut s = Scheduler::new(cfg);
        for _ in 0..5 {
            s.record_completion(1, 1e12, 1.0); // absurdly fast
            s.record_completion(2, 1.0, 1.0); // absurdly slow
        }
        assert_eq!(s.granularity_hint(1), 5e6);
        assert_eq!(s.granularity_hint(2), 1e6);
    }

    #[test]
    fn disabling_granularity_fixes_hint() {
        let cfg = SchedulerConfig {
            enable_dynamic_granularity: false,
            ..Default::default()
        };
        let mut s = Scheduler::new(cfg);
        for _ in 0..10 {
            s.record_completion(1, 1e9, 1.0);
        }
        let hint = s.granularity_hint(1);
        assert!(
            (hint - 1.0e7 * 60.0).abs() < 1e-6,
            "hint must ignore history"
        );
    }

    #[test]
    fn disabling_adaptation_fixes_speed_estimates() {
        let cfg = SchedulerConfig {
            enable_adaptive: false,
            ..Default::default()
        };
        let mut s = Scheduler::new(cfg);
        s.record_completion(1, 1e9, 1.0);
        assert_eq!(s.estimated_speed(1), 1.0e7);
    }

    #[test]
    fn ewma_adapts_to_slowdown() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        for _ in 0..10 {
            s.record_completion(1, 1e7, 1.0); // 1e7 ops/s
        }
        let fast = s.estimated_speed(1);
        for _ in 0..10 {
            s.record_completion(1, 1e6, 1.0); // drops to 1e6 ops/s
        }
        let slow = s.estimated_speed(1);
        assert!(slow < fast / 3.0, "estimate must chase the slowdown");
    }

    #[test]
    fn lease_deadline_scales_with_cost_and_respects_minimum() {
        let s = Scheduler::new(SchedulerConfig::default());
        // Prior speed 1e7: 1e9 ops ≈ 100 s est → lease 400 s.
        let d = s.lease_deadline(0, 1e9, 50.0);
        assert!((d - 450.0).abs() < 1e-6);
        // Tiny unit: the 120 s minimum applies.
        let d2 = s.lease_deadline(0, 1e3, 0.0);
        assert!((d2 - 120.0).abs() < 1e-6);
    }

    #[test]
    fn lease_backoff_doubles_then_clamps() {
        let s = Scheduler::new(SchedulerConfig::default());
        // Base lease for a tiny unit is the 120 s minimum.
        let base = s.lease_deadline_backed_off(0, 1e3, 0.0, 0);
        assert!((base - 120.0).abs() < 1e-9);
        assert!((s.lease_deadline_backed_off(0, 1e3, 0.0, 1) - 240.0).abs() < 1e-9);
        assert!((s.lease_deadline_backed_off(0, 1e3, 0.0, 2) - 480.0).abs() < 1e-9);
        // The doubling count clamps at max_backoff_doublings (6 → 64×).
        let capped = s.lease_deadline_backed_off(0, 1e3, 0.0, 6);
        assert!((capped - 120.0 * 64.0).abs() < 1e-9);
        assert_eq!(s.lease_deadline_backed_off(0, 1e3, 0.0, 1000), capped);
    }

    #[test]
    fn lease_backoff_never_overflows_or_grows_unbounded() {
        // Regression: the pre-refactor backoff computed `1u32 << n` with
        // an inline clamp; a configuration raising the clamp past 31
        // would have overflowed the shift, and nothing bounded the
        // resulting lease length. Both hazards are now clamped here.
        let s = Scheduler::new(SchedulerConfig {
            max_backoff_doublings: 200, // absurd config must still be safe
            ..Default::default()
        });
        for expiries in [0u32, 31, 32, 63, 64, 1_000, u32::MAX] {
            let d = s.lease_deadline_backed_off(0, 1e9, 1_000.0, expiries);
            assert!(
                d.is_finite(),
                "deadline must stay finite at {expiries} expiries"
            );
            assert!(
                d - 1_000.0 <= s.config().max_lease_secs + 1e-9,
                "lease {d} exceeds the absolute cap after {expiries} expiries"
            );
        }
        // The cap also bounds huge units on slow estimates.
        let mut slow = Scheduler::new(SchedulerConfig::default());
        for _ in 0..20 {
            slow.record_completion(7, 1.0, 1.0); // ~1 op/s donor
        }
        let d = slow.lease_deadline_backed_off(7, 1e12, 0.0, 6);
        assert!(d <= slow.config().max_lease_secs + 1e-9);
    }

    #[test]
    fn lease_jitter_spreads_deadlines_deterministically() {
        let s = Scheduler::new(SchedulerConfig::default());
        // Nominal lease for a tiny unit is the 120 s minimum; jittered
        // deadlines must stay within ±10 % of it and depend on the unit
        // id, so simultaneous assignments do not expire simultaneously.
        let nominal = s.lease_deadline_backed_off(0, 1e3, 0.0, 0);
        let deadlines: Vec<f64> = (0..16)
            .map(|unit| s.lease_deadline_jittered(0, 1e3, 0.0, 0, unit))
            .collect();
        for &d in &deadlines {
            assert!(
                (d - nominal).abs() <= 0.1 * nominal + 1e-9,
                "jittered deadline {d} strayed more than 10 % from {nominal}"
            );
        }
        let distinct: std::collections::HashSet<u64> =
            deadlines.iter().map(|d| d.to_bits()).collect();
        assert!(
            distinct.len() > 8,
            "jitter must spread same-instant deadlines, got {deadlines:?}"
        );
        // Pure function of the inputs: repeated calls agree exactly.
        for unit in 0..16 {
            assert_eq!(
                s.lease_deadline_jittered(0, 1e3, 0.0, 0, unit).to_bits(),
                deadlines[unit as usize].to_bits()
            );
        }
    }

    #[test]
    fn lease_jitter_respects_disable_and_absolute_cap() {
        let off = Scheduler::new(SchedulerConfig {
            lease_jitter_frac: 0.0,
            ..Default::default()
        });
        assert_eq!(
            off.lease_deadline_jittered(3, 1e9, 7.0, 2, 42).to_bits(),
            off.lease_deadline_backed_off(3, 1e9, 7.0, 2).to_bits(),
            "zero jitter must reproduce the nominal deadline exactly"
        );
        // Even with jitter, no lease may exceed the absolute cap.
        let s = Scheduler::new(SchedulerConfig {
            max_lease_secs: 500.0,
            ..Default::default()
        });
        for unit in 0..64 {
            let d = s.lease_deadline_jittered(0, 1e12, 100.0, 6, unit);
            assert!(d - 100.0 <= 500.0 + 1e-9, "lease {d} exceeds the cap");
        }
    }

    #[test]
    fn snapshot_restore_round_trips_adaptive_state() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        for _ in 0..10 {
            s.record_completion(1, 2.0e7, 1.0);
            s.record_completion(2, 2.0e6, 1.0);
        }
        let snap = s.snapshot();
        assert_eq!(snap.clients.len(), 2);

        let mut fresh = Scheduler::new(SchedulerConfig::default());
        fresh.restore(&snap);
        for c in [1, 2] {
            assert!(
                (fresh.estimated_speed(c) - s.estimated_speed(c)).abs()
                    < 1e-6 * s.estimated_speed(c),
                "client {c} speed estimate must survive the round trip"
            );
            assert_eq!(fresh.units_completed(c), s.units_completed(c));
        }
        assert!(fresh.audit().is_empty());
        // Snapshots are deterministic for identical state.
        assert_eq!(fresh.snapshot().clients.len(), snap.clients.len());

        // Poisoned entries are dropped, not restored.
        let mut bad = snap.clone();
        bad.clients.push((9, f64::NAN, 3));
        bad.clients.push((10, 0.0, 1));
        let mut guarded = Scheduler::new(SchedulerConfig::default());
        guarded.restore(&bad);
        assert_eq!(guarded.units_completed(9), 0);
        assert_eq!(guarded.units_completed(10), 0);
        assert!(guarded.audit().is_empty());
    }

    #[test]
    fn audit_is_clean_on_a_healthy_scheduler() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        for c in 0..4 {
            s.record_completion(c, 1e7, 1.0);
        }
        assert!(s.audit().is_empty());
    }

    #[test]
    fn audit_flags_poisoned_speed_estimates() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.record_completion(3, f64::NAN, 1.0);
        let violations = s.audit();
        assert!(
            violations
                .iter()
                .any(|v| v.contains("client 3") && v.contains("EWMA")),
            "{violations:?}"
        );
    }

    #[test]
    fn redundancy_policy_caps_copies() {
        let s = Scheduler::new(SchedulerConfig::default());
        assert!(s.may_dispatch_redundant(1));
        assert!(!s.may_dispatch_redundant(2));
        let naive = Scheduler::new(SchedulerConfig::naive());
        assert!(!naive.may_dispatch_redundant(1));
    }

    #[test]
    fn speculative_policy_extends_past_the_redundancy_cap() {
        let s = Scheduler::new(SchedulerConfig {
            enable_speculative_reissue: true,
            speculative_max_copies: 3,
            ..Default::default()
        });
        assert!(!s.may_dispatch_redundant(2), "plain redundancy caps at 2");
        assert!(s.may_dispatch_speculative(2), "speculation allows a third");
        assert!(!s.may_dispatch_speculative(3));
        let off = Scheduler::new(SchedulerConfig::default());
        assert!(!off.may_dispatch_speculative(1), "off by default");
    }

    #[test]
    fn reputation_promotes_after_threshold_and_demotes_on_dispute() {
        let mut s = Scheduler::new(SchedulerConfig {
            quorum_k: 3,
            reputation_threshold: 3,
            ..Default::default()
        });
        assert!(s.quorum_enabled());
        assert_eq!(s.required_votes(), 2, "majority of 3 by default");
        assert_eq!(s.required_copies(7), 3, "unknown donors are cross-checked");
        assert!(!s.note_quorum_agreement(7));
        assert!(!s.note_quorum_agreement(7));
        assert!(s.note_quorum_agreement(7), "third agreement promotes");
        assert!(s.is_trusted(7));
        assert_eq!(s.required_copies(7), 1, "trusted donors single-issue");
        assert!(!s.note_quorum_agreement(7), "already promoted");
        assert!(s.note_dispute(7), "dispute demotes a trusted donor");
        assert!(!s.is_trusted(7));
        assert_eq!(s.reputation_counts(7), (0, 1), "streak resets");
        assert_eq!(s.required_copies(7), 3);
        assert!(!s.note_dispute(7), "already demoted");
        assert!(s.audit().is_empty());
    }

    #[test]
    fn quorum_vote_configuration_clamps_sanely() {
        let majority5 = Scheduler::new(SchedulerConfig {
            quorum_k: 5,
            ..Default::default()
        });
        assert_eq!(majority5.required_votes(), 3);
        let explicit = Scheduler::new(SchedulerConfig {
            quorum_k: 3,
            quorum_votes: 3,
            ..Default::default()
        });
        assert_eq!(explicit.required_votes(), 3);
        let over = Scheduler::new(SchedulerConfig {
            quorum_k: 3,
            quorum_votes: 9,
            ..Default::default()
        });
        assert_eq!(over.required_votes(), 3, "clamped to quorum_k");
        let disabled = Scheduler::new(SchedulerConfig::default());
        assert!(!disabled.quorum_enabled());
        assert_eq!(disabled.required_copies(0), 1);
    }

    #[test]
    fn reputation_snapshot_round_trips_and_guards_stale_trust() {
        let mut s = Scheduler::new(SchedulerConfig {
            quorum_k: 3,
            reputation_threshold: 2,
            ..Default::default()
        });
        s.note_quorum_agreement(1);
        s.note_quorum_agreement(1);
        s.note_dispute(2);
        let snap = s.reputation_snapshot();
        assert_eq!(snap.clients, vec![(1, 2, 0, true), (2, 0, 1, false)]);

        let mut fresh = Scheduler::new(SchedulerConfig {
            quorum_k: 3,
            reputation_threshold: 2,
            ..Default::default()
        });
        fresh.restore_reputation(&snap);
        assert!(fresh.is_trusted(1));
        assert_eq!(fresh.reputation_counts(2), (0, 1));
        assert_eq!(fresh.reputation_snapshot(), snap);
        assert!(fresh.audit().is_empty());

        // A raised threshold invalidates recorded trust on restore.
        let mut stricter = Scheduler::new(SchedulerConfig {
            quorum_k: 3,
            reputation_threshold: 10,
            ..Default::default()
        });
        stricter.restore_reputation(&snap);
        assert!(!stricter.is_trusted(1), "stale trust is demoted");
        assert!(stricter.audit().is_empty());
    }

    #[test]
    fn forget_client_clears_reputation() {
        let mut s = Scheduler::new(SchedulerConfig {
            quorum_k: 2,
            reputation_threshold: 1,
            ..Default::default()
        });
        s.note_quorum_agreement(4);
        assert!(s.is_trusted(4));
        s.forget_client(4);
        assert!(!s.is_trusted(4), "a rejoining id starts over untrusted");
        assert_eq!(s.reputation_counts(4), (0, 0));
    }

    #[test]
    fn forget_client_resets_history() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.record_completion(1, 1e9, 1.0);
        assert_eq!(s.units_completed(1), 1);
        s.forget_client(1);
        assert_eq!(s.units_completed(1), 0);
        assert_eq!(s.estimated_speed(1), 1.0e7);
    }

    #[test]
    fn affinity_scores_count_held_digests() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.note_chunks(1, &[10, 20, 30]);
        s.note_chunks(2, &[30]);
        assert_eq!(s.affinity_score(1, &[10, 20, 99]), 2);
        assert_eq!(s.affinity_score(2, &[10, 20, 99]), 0);
        assert_eq!(s.affinity_score(3, &[10]), 0, "unknown client");
        assert!(s.audit().is_empty());
    }

    #[test]
    fn affinity_capacity_forgets_oldest_first() {
        let mut s = Scheduler::new(SchedulerConfig {
            affinity_capacity: 3,
            ..Default::default()
        });
        s.note_chunks(1, &[1, 2, 3, 4]);
        assert_eq!(s.affinity_entries(1), 3);
        assert_eq!(s.affinity_score(1, &[1]), 0, "oldest belief dropped");
        assert_eq!(s.affinity_score(1, &[2, 3, 4]), 3);
        // Duplicates never inflate the count.
        s.note_chunks(1, &[4, 4, 4]);
        assert_eq!(s.affinity_entries(1), 3);
        assert!(s.audit().is_empty());
    }

    #[test]
    fn disabling_affinity_zeroes_scores_and_tracks_nothing() {
        let mut s = Scheduler::new(SchedulerConfig {
            enable_affinity: false,
            ..Default::default()
        });
        s.note_chunks(1, &[10, 20]);
        assert_eq!(s.affinity_entries(1), 0);
        assert_eq!(s.affinity_score(1, &[10]), 0);
    }

    #[test]
    fn health_flag_zeroes_affinity_and_arms_live_speculation() {
        let mut s = Scheduler::new(SchedulerConfig {
            enable_health_detector: true,
            ..Default::default()
        });
        s.note_chunks(1, &[10, 20]);
        assert_eq!(s.affinity_score(1, &[10, 20]), 2);
        s.set_health_flag(1, true);
        assert!(s.is_health_flagged(1));
        assert_eq!(s.affinity_score(1, &[10, 20]), 0, "flagged loses affinity");
        // Live speculation shares the speculative ceiling but does not
        // require enable_speculative_reissue.
        assert!(s.may_dispatch_speculative_live(2));
        assert!(!s.may_dispatch_speculative_live(3));
        assert!(!s.may_dispatch_speculative(2), "tail path stays off");
        s.set_health_flag(1, false);
        assert_eq!(s.affinity_score(1, &[10, 20]), 2, "clearing restores it");
        s.set_health_flag(1, true);
        s.forget_client(1);
        assert!(!s.is_health_flagged(1), "departure clears the flag");

        let off = Scheduler::new(SchedulerConfig::default());
        assert!(
            !off.may_dispatch_speculative_live(0),
            "detector off disarms the live path entirely"
        );
    }

    #[test]
    fn affinity_snapshot_round_trips_and_forget_clears() {
        let mut s = Scheduler::new(SchedulerConfig::default());
        s.note_chunks(2, &[5, 6]);
        s.note_chunks(1, &[7]);
        let snap = s.affinity_snapshot();
        assert_eq!(
            snap.clients,
            vec![(1, vec![7]), (2, vec![5, 6])],
            "sorted by client, digests in insertion order"
        );
        let mut fresh = Scheduler::new(SchedulerConfig::default());
        fresh.restore_affinity(&snap);
        assert_eq!(fresh.affinity_snapshot(), snap);
        assert_eq!(fresh.affinity_score(2, &[5, 6]), 2);
        fresh.forget_client(2);
        assert_eq!(fresh.affinity_entries(2), 0, "departure clears beliefs");
        assert!(fresh.audit().is_empty());
    }
}
