//! Payload serialization for the real TCP transport.
//!
//! The Java system serialised `Algorithm` inputs and results over RMI /
//! raw sockets (paper §2.1). The in-process backends model that with a
//! declared `wire_bytes` per [`crate::problem::Payload`]; the TCP
//! backend makes it real: every problem that wants to run over sockets
//! registers a [`WireCodec`] translating its unit and result payloads
//! to and from bytes, so declared sizes become measured sizes.
//!
//! Codecs are hand-rolled (no serde — the workspace builds offline with
//! zero external dependencies) on top of two tiny helpers:
//! [`ByteWriter`] and [`ByteReader`]. Every `ByteReader` method is
//! bounds-checked and returns [`WireError`] instead of panicking, so a
//! corrupted or truncated body can never take the server down — the
//! transport routes decode failures to [`crate::Server::result_corrupted`].

use crate::problem::Payload;
use std::sync::Arc;

/// A payload failed to encode or decode for the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire codec error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Shorthand constructor.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// One data chunk a work unit depends on: what to ask the server for,
/// how to recognise it in the donor cache, and what it costs on the
/// wire when absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkNeed {
    /// Codec-defined chunk id (for DSEARCH: a database index).
    pub chunk: u64,
    /// Content digest of the chunk's encoded bytes — the donor-cache
    /// key and the integrity check on the `ChunkData` reply.
    pub digest: u64,
    /// Encoded size in bytes (what a cache miss transfers).
    pub bytes: u64,
}

/// Serialises one problem's unit and result payloads.
///
/// Implementations must round-trip: `decode_unit(encode_unit(p))`
/// yields a payload the problem's [`crate::Algorithm`] computes exactly
/// as it would the original, and likewise for results — the chaos suite
/// asserts TCP runs digest-equal to the sequential reference.
///
/// Decoders must be total: any byte string either decodes or returns a
/// [`WireError`]; panicking or allocating proportionally to a length
/// field (rather than to the actual input size) is a bug.
pub trait WireCodec: Send + Sync {
    /// Encodes a unit payload (server → client).
    fn encode_unit(&self, payload: &Payload) -> Result<Vec<u8>, WireError>;
    /// Decodes a unit payload (client side).
    fn decode_unit(&self, bytes: &[u8]) -> Result<Payload, WireError>;
    /// Encodes a result payload (client → server).
    fn encode_result(&self, payload: &Payload) -> Result<Vec<u8>, WireError>;
    /// Decodes a result payload (server side).
    fn decode_result(&self, bytes: &[u8]) -> Result<Payload, WireError>;

    /// The data chunks a unit payload depends on. The default — no
    /// chunks — means the unit is self-contained and the transport
    /// ships it exactly as before; codecs that separate *references*
    /// from *residues* (DSEARCH) return the chunk list here so donors
    /// can fetch misses into their LRU cache.
    fn unit_chunks(&self, _payload: &Payload) -> Vec<ChunkNeed> {
        Vec::new()
    }

    /// Encodes one chunk's bytes (server side, answering a
    /// `ChunkRequest`). Only meaningful for codecs whose
    /// [`WireCodec::unit_chunks`] is non-empty.
    fn encode_chunk(&self, chunk: u64) -> Result<Vec<u8>, WireError> {
        Err(WireError::new(format!(
            "codec does not serve chunks (requested chunk {chunk})"
        )))
    }

    /// Rebuilds a computable unit payload from its decoded reference
    /// form plus the fetched chunk bytes, `(chunk id, bytes)` pairs in
    /// [`WireCodec::unit_chunks`] order. The default passes the payload
    /// through untouched (self-contained units need no hydration).
    fn hydrate_unit(
        &self,
        payload: Payload,
        _chunks: &[(u64, Arc<Vec<u8>>)],
    ) -> Result<Payload, WireError> {
        Ok(payload)
    }
}

/// Little-endian byte-string builder for codec implementations.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (payload ids and indices).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `Option<usize>` (`u64::MAX` encodes `None`).
    pub fn opt_usize(&mut self, v: Option<usize>) {
        self.u64(v.map(|x| x as u64).unwrap_or(u64::MAX));
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// Bounds-checked little-endian reader over a byte slice.
///
/// Every method returns [`WireError`] on exhaustion; none allocates
/// more than the slice it was given, so a hostile length prefix cannot
/// drive an over-allocation.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed (trailing garbage is a
    /// decode error, not silent slack).
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::new(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "truncated: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64`-encoded `usize`.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::new(format!("usize overflow: {v}")))
    }

    /// Reads an `Option<usize>` (`u64::MAX` is `None`).
    pub fn opt_usize(&mut self) -> Result<Option<usize>, WireError> {
        let v = self.u64()?;
        if v == u64::MAX {
            Ok(None)
        } else {
            usize::try_from(v)
                .map(Some)
                .map_err(|_| WireError::new(format!("usize overflow: {v}")))
        }
    }

    /// Reads a length-prefixed byte string. The length is validated
    /// against the remaining input before any allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::new("invalid UTF-8 in string"))
    }

    /// Reads a `u32` element count, validated against a per-element
    /// lower bound in bytes so a hostile count cannot reserve unbounded
    /// memory: `count × min_elem_bytes` must fit in the remaining input.
    pub fn count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::new(format!(
                "element count {n} exceeds remaining input ({} bytes)",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip_primitives() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i32(-42);
        w.f64(std::f64::consts::PI);
        w.opt_usize(None);
        w.opt_usize(Some(99));
        w.str("héllo");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.i32().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.opt_usize().unwrap(), None);
        assert_eq!(r.opt_usize().unwrap(), Some(99));
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());
        // The failed read consumed nothing extra; a smaller read works.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u8().unwrap(), 1);
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        // Claims a 4 GiB string in a 10-byte input.
        let mut w = ByteWriter::new();
        w.u32(u32::MAX);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0; 6]);
        let mut r = ByteReader::new(&bytes);
        assert!(r.bytes().is_err());
        let mut r2 = ByteReader::new(&bytes);
        assert!(r2.count(1).is_err());
    }

    #[test]
    fn trailing_garbage_is_a_decode_error() {
        let mut w = ByteWriter::new();
        w.u32(5);
        w.u8(0xAA);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32().unwrap(), 5);
        assert!(r.finish().is_err());
    }
}
