//! Deterministic fault injection: seeded, replayable fault schedules.
//!
//! The paper's system ran for three years on ~200 semi-idle donor PCs,
//! so churn, stragglers and lost messages are the *normal* operating
//! regime, not an edge case. A [`FaultPlan`] expresses a schedule of
//! injectable faults as plain data — client crashes mid-unit, permanent
//! departures, straggler slowdowns, dropped / duplicated / corrupted
//! result deliveries, server-link degradation — so the *identical* plan
//! can be interpreted by both execution backends:
//!
//! * [`crate::sim_backend::SimRunner::with_faults`] applies it against
//!   gridsim's virtual clock (lifecycle events become simulator events,
//!   slowdowns scale the machine's compute model, link faults degrade
//!   the shared server link);
//! * [`crate::thread_backend::run_threaded_faulty`] applies it against
//!   a scaled wall clock with real OS threads (workers sleep out
//!   downtime, discard in-flight work on crash, and mutate deliveries).
//!
//! Both backends consume the plan through the [`FaultInjector`] trait,
//! whose canonical implementation is [`PlanInterpreter`]. Random plans
//! are generated from a single `u64` seed ([`FaultPlan::random`]), and
//! every failing chaos run is replayable from its printed `(seed,
//! plan)` alone — the plan is data, the interpreter is deterministic,
//! and nothing else feeds the injection.

use crate::sched::ClientId;
use biodist_util::rng::{Rng, Xoshiro256StarStar};

/// One kind of injectable fault.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The client joins the pool late (it is absent before `at`).
    LateJoin,
    /// The client leaves permanently and silently (owner pulls the
    /// plug). In-flight work is lost; leases must recover it.
    Depart,
    /// The client crashes, losing any in-flight unit, and rejoins after
    /// `down_secs` (a reboot).
    Crash {
        /// How long the client stays down before rejoining.
        down_secs: f64,
    },
    /// The client computes `factor`× slower for `duration_secs`
    /// (owner activity, thermal throttling — the classic straggler).
    Slowdown {
        /// Compute-time multiplier, ≥ 1.
        factor: f64,
        /// Length of the slow window.
        duration_secs: f64,
    },
    /// The client's next completed result after `at` is lost in
    /// transit. The server never sees it; the lease must expire and the
    /// unit be reissued.
    DropResult,
    /// The client's next completed result after `at` is delivered
    /// twice (a retransmission bug). The server must accept exactly one
    /// copy.
    DuplicateResult,
    /// The client's next completed result after `at` arrives with a
    /// corrupted payload. The transport layer detects the checksum
    /// mismatch and the server must reissue the unit.
    CorruptResult,
    /// The client's next completed result after `at` is *wrong*: its
    /// payload bytes are flipped **before** CRC framing, so the wire
    /// layer cannot catch it — a true Byzantine donor. Only K-way
    /// quorum compare on the combine path defends against it.
    WrongResult,
    /// The shared server link runs `factor`× slower for
    /// `duration_secs` (congestion, a flapping switch port).
    LinkDegrade {
        /// Transfer-time multiplier, ≥ 1.
        factor: f64,
        /// Length of the degraded window.
        duration_secs: f64,
    },
    /// A chunk *replica* endpoint crashes at `at` and refuses
    /// connections for `down_secs` before coming back with its store
    /// intact (a rebooted mirror). The event's `client` field carries
    /// the **replica index**, not a donor id — replicas live in their
    /// own index space.
    ReplicaCrash {
        /// How long the replica stays down before serving again.
        down_secs: f64,
    },
    /// A chunk replica endpoint stalls: connections are accepted but
    /// requests are not answered until the window closes (a wedged
    /// process, a full disk). Donors time out and must fail over. The
    /// event's `client` field carries the **replica index**.
    ReplicaStall {
        /// Length of the stalled window.
        duration_secs: f64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires / arms, in backend time (virtual seconds on
    /// the simulator, scaled wall seconds on the thread backend).
    pub at: f64,
    /// The affected client; `None` for system-wide faults
    /// ([`FaultKind::LinkDegrade`]).
    pub client: Option<ClientId>,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, replayable schedule of faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    /// Carried so failure reports identify the plan compactly.
    pub seed: u64,
    /// The scheduled faults, in no particular order.
    pub events: Vec<FaultEvent>,
}

/// Tuning knobs for [`FaultPlan::random`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOptions {
    /// Number of clients in the pool the plan targets.
    pub n_clients: usize,
    /// Faults are scheduled in `[0.02, 0.7] × horizon_secs`, early
    /// enough that short runs still encounter them.
    pub horizon_secs: f64,
    /// How many fault events to draw.
    pub n_faults: usize,
    /// Hard cap on permanent departures, so a random plan can never
    /// drain the pool and deadlock the run. Crashes always rejoin and
    /// are not capped.
    pub max_departures: usize,
}

impl ChaosOptions {
    /// A default chaos profile for a pool of `n_clients`: one fault per
    /// client on average, at most a quarter of the pool departing.
    pub fn for_pool(n_clients: usize, horizon_secs: f64) -> Self {
        assert!(n_clients >= 2, "chaos needs at least 2 clients");
        Self {
            n_clients,
            horizon_secs,
            n_faults: n_clients,
            max_departures: (n_clients / 4).min(n_clients.saturating_sub(2)),
        }
    }
}

impl FaultPlan {
    /// The empty plan: no faults.
    pub fn none() -> Self {
        Self {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// A hand-built plan starts empty; add events with [`FaultPlan::with`].
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder: adds one event.
    pub fn with(mut self, at: f64, client: impl Into<Option<ClientId>>, kind: FaultKind) -> Self {
        self.push(at, client, kind);
        self
    }

    /// Adds one event.
    pub fn push(&mut self, at: f64, client: impl Into<Option<ClientId>>, kind: FaultKind) {
        assert!(
            at.is_finite() && at >= 0.0,
            "fault time must be finite and non-negative"
        );
        self.events.push(FaultEvent {
            at,
            client: client.into(),
            kind,
        });
    }

    /// Generates a random plan from `seed`. Identical `(seed, opts)`
    /// always yield the identical plan; the plan alone (its `Debug`
    /// rendering) is enough to reproduce any failure it caused.
    pub fn random(seed: u64, opts: &ChaosOptions) -> Self {
        assert!(opts.n_clients >= 2, "chaos needs at least 2 clients");
        assert!(opts.horizon_secs > 0.0, "horizon must be positive");
        let mut rng = Xoshiro256StarStar::new(seed).derive(0xFA_0173);
        let mut plan = Self::new(seed);
        let mut departures = 0usize;
        // A client that departs (or is selected to) is never targeted
        // again: post-departure faults on it would be dead events.
        let mut departed = vec![false; opts.n_clients];
        for _ in 0..opts.n_faults {
            let at = rng.next_f64_range(0.02, 0.7) * opts.horizon_secs;
            // Weighted fault mix: delivery faults are cheap and land
            // reliably; lifecycle and performance faults are rarer.
            let kind_idx = rng.next_weighted(&[
                1.0, // LateJoin
                1.0, // Depart (subject to the cap)
                1.5, // Crash
                1.5, // Slowdown
                2.0, // DropResult
                1.5, // DuplicateResult
                2.0, // CorruptResult
                1.0, // LinkDegrade
            ]);
            if kind_idx == 7 {
                let factor = rng.next_f64_range(2.0, 10.0);
                let duration_secs = rng.next_f64_range(0.05, 0.3) * opts.horizon_secs;
                plan.push(
                    at,
                    None,
                    FaultKind::LinkDegrade {
                        factor,
                        duration_secs,
                    },
                );
                continue;
            }
            let candidates: Vec<ClientId> = (0..opts.n_clients).filter(|&c| !departed[c]).collect();
            if candidates.is_empty() {
                break;
            }
            let client = candidates[rng.next_below(candidates.len() as u64) as usize];
            let kind = match kind_idx {
                0 => FaultKind::LateJoin,
                1 => {
                    if departures >= opts.max_departures {
                        // Cap reached: degrade to a crash (it rejoins).
                        FaultKind::Crash {
                            down_secs: rng.next_f64_range(0.05, 0.2) * opts.horizon_secs,
                        }
                    } else {
                        departures += 1;
                        departed[client] = true;
                        FaultKind::Depart
                    }
                }
                2 => FaultKind::Crash {
                    down_secs: rng.next_f64_range(0.05, 0.2) * opts.horizon_secs,
                },
                3 => FaultKind::Slowdown {
                    factor: rng.next_f64_range(2.0, 8.0),
                    duration_secs: rng.next_f64_range(0.1, 0.4) * opts.horizon_secs,
                },
                4 => FaultKind::DropResult,
                5 => FaultKind::DuplicateResult,
                6 => FaultKind::CorruptResult,
                _ => unreachable!(),
            };
            // LateJoin must arm at the client's single join time; keep
            // only the latest if several are drawn (handled in accessor).
            plan.push(at, client, kind);
        }
        plan
    }

    /// Generates a Byzantine plan from `seed`: a `byzantine_frac`
    /// fraction of the pool (at least one donor, never the whole pool)
    /// is selected deterministically, and each selected donor arms
    /// `wrongs_per_donor` [`FaultKind::WrongResult`] one-shots spread
    /// over `[0.02, 0.7] × horizon`. Deliberately a *separate* builder
    /// from [`FaultPlan::random`]: adding `WrongResult` to the random
    /// mix would silently change every existing seed's plan.
    pub fn byzantine(
        seed: u64,
        opts: &ChaosOptions,
        byzantine_frac: f64,
        wrongs_per_donor: usize,
    ) -> Self {
        assert!(
            opts.n_clients >= 2,
            "byzantine chaos needs at least 2 clients"
        );
        assert!(
            (0.0..=1.0).contains(&byzantine_frac),
            "byzantine fraction must be in [0, 1]"
        );
        let mut rng = Xoshiro256StarStar::new(seed).derive(0xB1_2A17);
        let n_byz = ((opts.n_clients as f64 * byzantine_frac).round() as usize)
            .clamp(1, opts.n_clients - 1);
        // Fisher–Yates prefix: pick n_byz distinct donors.
        let mut pool: Vec<ClientId> = (0..opts.n_clients).collect();
        for i in 0..n_byz {
            let j = i + rng.next_below((opts.n_clients - i) as u64) as usize;
            pool.swap(i, j);
        }
        let mut plan = Self::new(seed);
        for &client in &pool[..n_byz] {
            for _ in 0..wrongs_per_donor {
                let at = rng.next_f64_range(0.02, 0.7) * opts.horizon_secs;
                plan.push(at, client, FaultKind::WrongResult);
            }
        }
        plan
    }

    /// The time at which `client` joins the pool, if the plan delays it
    /// (latest [`FaultKind::LateJoin`] wins when several are present).
    pub fn join_time(&self, client: ClientId) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.client == Some(client) && e.kind == FaultKind::LateJoin)
            .map(|e| e.at)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.max(t)))
            })
    }

    /// The time at which `client` permanently departs (earliest
    /// [`FaultKind::Depart`] wins).
    pub fn departure_time(&self, client: ClientId) -> Option<f64> {
        self.events
            .iter()
            .filter(|e| e.client == Some(client) && e.kind == FaultKind::Depart)
            .map(|e| e.at)
            .fold(None, |acc: Option<f64>, t| {
                Some(acc.map_or(t, |a| a.min(t)))
            })
    }

    /// `(crash_time, down_secs)` pairs for `client`, sorted by time.
    pub fn crashes(&self, client: ClientId) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| e.client == Some(client))
            .filter_map(|e| match e.kind {
                FaultKind::Crash { down_secs } => Some((e.at, down_secs)),
                _ => None,
            })
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    }

    /// `(start, end)` unavailability windows for replica index
    /// `replica` from [`FaultKind::ReplicaCrash`] events, sorted by
    /// start time. Replica indices live in their own space — the same
    /// number as a donor id means a different machine.
    pub fn replica_crashes(&self, replica: usize) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| e.client == Some(replica))
            .filter_map(|e| match e.kind {
                FaultKind::ReplicaCrash { down_secs } => Some((e.at, e.at + down_secs)),
                _ => None,
            })
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    }

    /// `(start, end)` stall windows for replica index `replica` from
    /// [`FaultKind::ReplicaStall`] events, sorted by start time.
    pub fn replica_stalls(&self, replica: usize) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self
            .events
            .iter()
            .filter(|e| e.client == Some(replica))
            .filter_map(|e| match e.kind {
                FaultKind::ReplicaStall { duration_secs } => Some((e.at, e.at + duration_secs)),
                _ => None,
            })
            .collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        v
    }

    /// The replica-fault events in the plan, as `(replica, at, kind)` —
    /// used by failure reports to print the replica topology story.
    pub fn replica_events(&self) -> Vec<&FaultEvent> {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::ReplicaCrash { .. } | FaultKind::ReplicaStall { .. }
                )
            })
            .collect()
    }

    /// Number of clients that never depart permanently (the pool the
    /// run can always fall back on). Plans used in tests should keep
    /// this ≥ 1 or the run cannot complete.
    pub fn permanent_survivors(&self, n_clients: usize) -> usize {
        (0..n_clients)
            .filter(|&c| self.departure_time(c).is_none())
            .count()
    }

    /// A compact FNV-1a fingerprint of the plan (seed + every event,
    /// field by field). Failure reports print it next to the replay
    /// seed so a mismatch between "same seed" runs — e.g. after the
    /// generator's weights change — is detectable at a glance.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&self.seed.to_le_bytes());
        for e in &self.events {
            eat(&e.at.to_bits().to_le_bytes());
            eat(&e.client.map_or(u64::MAX, |c| c as u64).to_le_bytes());
            let (tag, a, b): (u8, f64, f64) = match e.kind {
                FaultKind::LateJoin => (0, 0.0, 0.0),
                FaultKind::Depart => (1, 0.0, 0.0),
                FaultKind::Crash { down_secs } => (2, down_secs, 0.0),
                FaultKind::Slowdown {
                    factor,
                    duration_secs,
                } => (3, factor, duration_secs),
                FaultKind::DropResult => (4, 0.0, 0.0),
                FaultKind::DuplicateResult => (5, 0.0, 0.0),
                FaultKind::CorruptResult => (6, 0.0, 0.0),
                FaultKind::LinkDegrade {
                    factor,
                    duration_secs,
                } => (7, factor, duration_secs),
                FaultKind::WrongResult => (8, 0.0, 0.0),
                FaultKind::ReplicaCrash { down_secs } => (9, down_secs, 0.0),
                FaultKind::ReplicaStall { duration_secs } => (10, duration_secs, 0.0),
            };
            eat(&[tag]);
            eat(&a.to_bits().to_le_bytes());
            eat(&b.to_bits().to_le_bytes());
        }
        h
    }
}

/// What the transport layer does with a completed result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryAction {
    /// Deliver normally.
    Deliver,
    /// The message is lost; the server never sees the result.
    Drop,
    /// The message is delivered twice (retransmission).
    Duplicate,
    /// The payload arrives corrupted; the server's transport layer
    /// detects the checksum mismatch and must reissue the unit.
    Corrupt,
}

/// The canonical Byzantine mutation: flips the final payload byte with
/// a client-derived odd mask, so the result stays *decodable* (same
/// length, CRC re-framed over the flipped bytes) but semantically
/// wrong — and two Byzantine donors never produce the *same* wrong
/// bytes, which would let them outvote an honest quorum. All three
/// backends apply this one function so a plan means the same thing
/// everywhere. No-op on an empty payload.
pub fn flip_result_bytes(bytes: &mut [u8], client: ClientId) {
    if let Some(last) = bytes.last_mut() {
        // Odd mask: always non-zero, distinct per client (mod 128).
        *last ^= (client as u8).wrapping_shl(1) | 1;
    }
}

/// The seam both backends inject faults through. The default methods
/// are the fault-free behaviour, so [`NoFaults`] is an empty impl.
pub trait FaultInjector: Send {
    /// Decides the fate of a result `client` finished at `now`.
    /// Stateful: armed one-shot faults are consumed by the call.
    fn delivery_action(&mut self, client: ClientId, now: f64) -> DeliveryAction {
        let _ = (client, now);
        DeliveryAction::Deliver
    }

    /// Compute-time multiplier for a unit `client` starts at `now`
    /// (≥ 1; 1 = full speed). Sampled once per unit, at its start.
    fn compute_scale(&self, client: ClientId, now: f64) -> f64 {
        let _ = (client, now);
        1.0
    }

    /// Transfer-time multiplier for the shared server link at `now`.
    fn link_scale(&self, now: f64) -> f64 {
        let _ = now;
        1.0
    }

    /// Whether the result `client` finished at `now` is computed
    /// *wrong* (Byzantine). Stateful: an armed one-shot is consumed by
    /// the call. Kept separate from [`FaultInjector::delivery_action`]
    /// so the TCP client's interpreter (which injects wrong bytes
    /// before framing) and the fault proxy's interpreter (which mutates
    /// frames on the wire) never skew each other's armed-fault queues.
    fn wrong_result(&mut self, client: ClientId, now: f64) -> bool {
        let _ = (client, now);
        false
    }
}

/// The fault-free injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// Interprets a [`FaultPlan`] deterministically. Both backends use this
/// one implementation, so a plan means the same thing everywhere.
#[derive(Debug)]
pub struct PlanInterpreter {
    // Armed one-shot delivery faults per client, each sorted by time.
    deliveries: Vec<Vec<(f64, DeliveryAction)>>,
    // Armed one-shot Byzantine wrong-result faults per client, sorted
    // by time; a separate queue so consuming one never perturbs the
    // delivery-fault schedule (and vice versa).
    wrongs: Vec<Vec<f64>>,
    // (start, end, factor) slowdown windows per client.
    slowdowns: Vec<Vec<(f64, f64, f64)>>,
    // (start, end, factor) link-degradation windows.
    link_windows: Vec<(f64, f64, f64)>,
    // Consumed-fault counters, for post-run reporting.
    consumed: [u64; 3],
    // Consumed wrong-result faults.
    consumed_wrong: u64,
}

impl PlanInterpreter {
    /// Builds the interpreter for a plan over `n_clients` clients.
    pub fn new(plan: &FaultPlan, n_clients: usize) -> Self {
        let mut deliveries: Vec<Vec<(f64, DeliveryAction)>> = vec![Vec::new(); n_clients];
        let mut wrongs: Vec<Vec<f64>> = vec![Vec::new(); n_clients];
        let mut slowdowns: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); n_clients];
        let mut link_windows = Vec::new();
        for e in &plan.events {
            match (&e.kind, e.client) {
                (FaultKind::DropResult, Some(c)) if c < n_clients => {
                    deliveries[c].push((e.at, DeliveryAction::Drop));
                }
                (FaultKind::WrongResult, Some(c)) if c < n_clients => {
                    wrongs[c].push(e.at);
                }
                (FaultKind::DuplicateResult, Some(c)) if c < n_clients => {
                    deliveries[c].push((e.at, DeliveryAction::Duplicate));
                }
                (FaultKind::CorruptResult, Some(c)) if c < n_clients => {
                    deliveries[c].push((e.at, DeliveryAction::Corrupt));
                }
                (
                    FaultKind::Slowdown {
                        factor,
                        duration_secs,
                    },
                    Some(c),
                ) if c < n_clients => {
                    slowdowns[c].push((e.at, e.at + duration_secs, *factor));
                }
                (
                    FaultKind::LinkDegrade {
                        factor,
                        duration_secs,
                    },
                    _,
                ) => {
                    link_windows.push((e.at, e.at + duration_secs, *factor));
                }
                _ => {} // lifecycle events are read via the plan accessors
            }
        }
        for v in &mut deliveries {
            v.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        for v in &mut wrongs {
            v.sort_by(f64::total_cmp);
        }
        Self {
            deliveries,
            wrongs,
            slowdowns,
            link_windows,
            consumed: [0; 3],
            consumed_wrong: 0,
        }
    }

    /// `(dropped, duplicated, corrupted)` deliveries consumed so far.
    pub fn consumed_deliveries(&self) -> (u64, u64, u64) {
        (self.consumed[0], self.consumed[1], self.consumed[2])
    }

    /// Byzantine wrong-result faults consumed so far.
    pub fn consumed_wrong_results(&self) -> u64 {
        self.consumed_wrong
    }
}

impl FaultInjector for PlanInterpreter {
    fn delivery_action(&mut self, client: ClientId, now: f64) -> DeliveryAction {
        let Some(armed) = self.deliveries.get_mut(client) else {
            return DeliveryAction::Deliver;
        };
        // Consume the earliest armed fault whose time has passed; later
        // armed faults stay pending for subsequent deliveries.
        match armed.first() {
            Some(&(at, action)) if at <= now => {
                armed.remove(0);
                let slot = match action {
                    DeliveryAction::Drop => 0,
                    DeliveryAction::Duplicate => 1,
                    DeliveryAction::Corrupt => 2,
                    DeliveryAction::Deliver => unreachable!("never armed"),
                };
                self.consumed[slot] += 1;
                action
            }
            _ => DeliveryAction::Deliver,
        }
    }

    fn wrong_result(&mut self, client: ClientId, now: f64) -> bool {
        let Some(armed) = self.wrongs.get_mut(client) else {
            return false;
        };
        match armed.first() {
            Some(&at) if at <= now => {
                armed.remove(0);
                self.consumed_wrong += 1;
                true
            }
            _ => false,
        }
    }

    fn compute_scale(&self, client: ClientId, now: f64) -> f64 {
        self.slowdowns
            .get(client)
            .map(|ws| {
                ws.iter()
                    .filter(|&&(s, e, _)| s <= now && now < e)
                    .map(|&(_, _, f)| f)
                    .product()
            })
            .unwrap_or(1.0)
    }

    fn link_scale(&self, now: f64) -> f64 {
        self.link_windows
            .iter()
            .filter(|&&(s, e, _)| s <= now && now < e)
            .map(|&(_, _, f)| f)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let opts = ChaosOptions::for_pool(8, 300.0);
        let a = FaultPlan::random(42, &opts);
        let b = FaultPlan::random(42, &opts);
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::random(43, &opts);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn random_plans_respect_the_departure_cap() {
        for seed in 0..200 {
            let opts = ChaosOptions {
                n_faults: 40,
                ..ChaosOptions::for_pool(8, 300.0)
            };
            let plan = FaultPlan::random(seed, &opts);
            let departures = (0..8).filter(|&c| plan.departure_time(c).is_some()).count();
            assert!(
                departures <= opts.max_departures,
                "seed {seed}: {departures} departures"
            );
            assert!(plan.permanent_survivors(8) >= 6);
        }
    }

    #[test]
    fn lifecycle_accessors_pick_the_right_event() {
        let plan = FaultPlan::new(1)
            .with(50.0, 3, FaultKind::LateJoin)
            .with(80.0, 3, FaultKind::LateJoin)
            .with(200.0, 4, FaultKind::Depart)
            .with(150.0, 4, FaultKind::Depart)
            .with(30.0, 5, FaultKind::Crash { down_secs: 10.0 })
            .with(10.0, 5, FaultKind::Crash { down_secs: 5.0 });
        assert_eq!(plan.join_time(3), Some(80.0), "latest join wins");
        assert_eq!(
            plan.departure_time(4),
            Some(150.0),
            "earliest departure wins"
        );
        assert_eq!(
            plan.crashes(5),
            vec![(10.0, 5.0), (30.0, 10.0)],
            "sorted by time"
        );
        assert_eq!(plan.join_time(0), None);
        assert_eq!(plan.permanent_survivors(6), 5);
    }

    #[test]
    fn interpreter_consumes_armed_deliveries_in_order() {
        let plan = FaultPlan::new(2)
            .with(10.0, 0, FaultKind::DropResult)
            .with(20.0, 0, FaultKind::CorruptResult)
            .with(5.0, 1, FaultKind::DuplicateResult);
        let mut interp = PlanInterpreter::new(&plan, 2);
        // Before the arm time: nothing fires.
        assert_eq!(interp.delivery_action(0, 9.0), DeliveryAction::Deliver);
        // Both armed faults have passed by t=25, but only one fires per
        // delivery, earliest first.
        assert_eq!(interp.delivery_action(0, 25.0), DeliveryAction::Drop);
        assert_eq!(interp.delivery_action(0, 25.0), DeliveryAction::Corrupt);
        assert_eq!(interp.delivery_action(0, 25.0), DeliveryAction::Deliver);
        assert_eq!(interp.delivery_action(1, 6.0), DeliveryAction::Duplicate);
        assert_eq!(interp.consumed_deliveries(), (1, 1, 1));
    }

    #[test]
    fn interpreter_scales_compute_and_link_inside_windows() {
        let plan = FaultPlan::new(3)
            .with(
                100.0,
                2,
                FaultKind::Slowdown {
                    factor: 4.0,
                    duration_secs: 50.0,
                },
            )
            .with(
                120.0,
                2,
                FaultKind::Slowdown {
                    factor: 2.0,
                    duration_secs: 10.0,
                },
            )
            .with(
                40.0,
                None,
                FaultKind::LinkDegrade {
                    factor: 5.0,
                    duration_secs: 20.0,
                },
            );
        let interp = PlanInterpreter::new(&plan, 4);
        assert_eq!(interp.compute_scale(2, 99.0), 1.0);
        assert_eq!(interp.compute_scale(2, 110.0), 4.0);
        assert_eq!(
            interp.compute_scale(2, 125.0),
            8.0,
            "overlapping windows multiply"
        );
        assert_eq!(
            interp.compute_scale(2, 150.0),
            1.0,
            "window end is exclusive"
        );
        assert_eq!(
            interp.compute_scale(0, 110.0),
            1.0,
            "other clients unaffected"
        );
        assert_eq!(interp.link_scale(45.0), 5.0);
        assert_eq!(interp.link_scale(60.0), 1.0);
    }

    #[test]
    fn out_of_range_clients_are_ignored() {
        let plan = FaultPlan::new(4).with(1.0, 99, FaultKind::DropResult);
        let mut interp = PlanInterpreter::new(&plan, 4);
        assert_eq!(interp.delivery_action(99, 5.0), DeliveryAction::Deliver);
        assert_eq!(interp.compute_scale(99, 5.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_fault_time_is_rejected() {
        FaultPlan::new(0).push(-1.0, 0, FaultKind::Depart);
    }

    #[test]
    fn byzantine_plans_are_deterministic_and_bounded() {
        let opts = ChaosOptions::for_pool(6, 200.0);
        let a = FaultPlan::byzantine(42, &opts, 0.3, 4);
        assert_eq!(a, FaultPlan::byzantine(42, &opts, 0.3, 4));
        assert_ne!(a, FaultPlan::byzantine(43, &opts, 0.3, 4));
        // 30% of 6 donors = 2 Byzantine donors, 4 wrongs each.
        let donors: std::collections::HashSet<_> =
            a.events.iter().filter_map(|e| e.client).collect();
        assert_eq!(donors.len(), 2);
        assert_eq!(a.events.len(), 8);
        assert!(a
            .events
            .iter()
            .all(|e| e.kind == FaultKind::WrongResult && e.at <= 0.7 * 200.0));
        // The fraction never selects the whole pool (the run must be
        // able to out-vote the liars) and never rounds down to zero.
        let all = FaultPlan::byzantine(7, &opts, 1.0, 1);
        let donors: std::collections::HashSet<_> =
            all.events.iter().filter_map(|e| e.client).collect();
        assert_eq!(donors.len(), 5);
        let one = FaultPlan::byzantine(7, &opts, 0.0, 1);
        assert_eq!(one.events.len(), 1);
    }

    #[test]
    fn interpreter_consumes_wrong_results_independently_of_deliveries() {
        let plan = FaultPlan::new(9)
            .with(10.0, 0, FaultKind::WrongResult)
            .with(20.0, 0, FaultKind::WrongResult)
            .with(5.0, 0, FaultKind::DropResult);
        let mut interp = PlanInterpreter::new(&plan, 2);
        assert!(!interp.wrong_result(0, 9.0), "not armed yet");
        assert!(interp.wrong_result(0, 15.0));
        // Consuming a wrong-result must not consume the drop.
        assert_eq!(interp.delivery_action(0, 15.0), DeliveryAction::Drop);
        assert!(interp.wrong_result(0, 25.0));
        assert!(!interp.wrong_result(0, 25.0), "both consumed");
        assert!(!interp.wrong_result(1, 25.0), "other client unaffected");
        assert_eq!(interp.consumed_wrong_results(), 2);
        assert_eq!(interp.consumed_deliveries(), (1, 0, 0));
    }

    #[test]
    fn flip_result_bytes_is_clientwise_distinct_and_reversible() {
        let original = vec![1u8, 2, 3, 4];
        let mut a = original.clone();
        let mut b = original.clone();
        flip_result_bytes(&mut a, 0);
        flip_result_bytes(&mut b, 1);
        assert_ne!(a, original, "mutation must change the bytes");
        assert_ne!(b, original);
        assert_ne!(a, b, "two Byzantine donors must disagree with each other");
        assert_eq!(a.len(), original.len(), "length preserved: stays decodable");
        let mut empty: Vec<u8> = Vec::new();
        flip_result_bytes(&mut empty, 3); // no-op, no panic
    }

    #[test]
    fn replica_fault_accessors_pick_their_own_index_space() {
        let plan = FaultPlan::new(5)
            .with(0.5, 1, FaultKind::ReplicaCrash { down_secs: 0.25 })
            .with(0.25, 1, FaultKind::ReplicaCrash { down_secs: 0.25 })
            .with(0.75, 1, FaultKind::ReplicaStall { duration_secs: 0.5 })
            .with(0.5, 0, FaultKind::Crash { down_secs: 1.0 });
        assert_eq!(
            plan.replica_crashes(1),
            vec![(0.25, 0.5), (0.5, 0.75)],
            "sorted windows"
        );
        assert_eq!(plan.replica_stalls(1), vec![(0.75, 1.25)]);
        assert_eq!(
            plan.replica_crashes(0),
            vec![],
            "donor crashes are not replica crashes even at the same index"
        );
        assert_eq!(plan.crashes(1), vec![], "and vice versa");
        assert_eq!(plan.replica_events().len(), 3);
        // The digest distinguishes the two replica kinds.
        let a = FaultPlan::new(1).with(5.0, 0, FaultKind::ReplicaCrash { down_secs: 1.0 });
        let b = FaultPlan::new(1).with(5.0, 0, FaultKind::ReplicaStall { duration_secs: 1.0 });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_covers_wrong_result_events() {
        let a = FaultPlan::new(1).with(5.0, 0, FaultKind::WrongResult);
        let b = FaultPlan::new(1).with(5.0, 0, FaultKind::CorruptResult);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let opts = ChaosOptions::for_pool(8, 300.0);
        let a = FaultPlan::random(42, &opts);
        assert_eq!(a.digest(), FaultPlan::random(42, &opts).digest());
        assert_ne!(a.digest(), FaultPlan::random(43, &opts).digest());
        // The digest covers event contents, not just the seed.
        let mut b = a.clone();
        b.push(1.0, 0, FaultKind::DropResult);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(FaultPlan::none().digest(), 0);
    }
}
