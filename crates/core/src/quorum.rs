//! Byte-identical quorum vote counting for K-way redundant issuance.
//!
//! Folding@Home's central design constraint (PAPERS.md: Larson et al.)
//! is that donors are *untrusted*: CRC framing catches transit
//! corruption, but a donor that computes a wrong answer returns a
//! perfectly well-framed lie. The defence is redundancy: issue the same
//! unit to K distinct donors and only feed the combine path once a
//! configured number of **byte-identical** candidate results agrees.
//!
//! [`QuorumTally`] is the pure vote counter for one work unit. It is
//! deliberately free of server state so the property suite can
//! model-check it in isolation: candidates are keyed by their
//! codec-encoded bytes (the same bytes the checkpoint log journals),
//! one vote per donor is enforced, and the tally reports at most one
//! [`VoteOutcome::Quorum`] — the server folds exactly then, never
//! before (`tests/properties.rs`).

use crate::problem::TaskResult;
use crate::sched::ClientId;

/// One distinct candidate byte-pattern and the donors that produced it.
#[derive(Debug)]
struct Candidate {
    bytes: Vec<u8>,
    /// A representative decoded result for this byte-pattern. `None`
    /// only for candidates restored from a checkpoint log (the log
    /// carries bytes, not live payloads); the vote that completes a
    /// quorum is always live, so the winner always has one.
    result: Option<TaskResult>,
    voters: Vec<ClientId>,
}

/// What recording one vote did to the tally.
#[derive(Debug)]
pub enum VoteOutcome {
    /// Vote recorded; quorum not yet reached.
    Pending,
    /// This donor already voted on this unit (a duplicated delivery or
    /// a stale redundant execution); the vote is ignored.
    AlreadyVoted,
    /// A quorum of byte-identical results agrees: fold `result` exactly
    /// once, credit `agreed`, dispute `dissenters`.
    Quorum {
        /// The representative result of the winning byte-pattern.
        result: TaskResult,
        /// The winning pattern's encoded bytes (what the checkpoint log
        /// journals before the fold).
        bytes: Vec<u8>,
        /// Donors whose results matched the winning pattern.
        agreed: Vec<ClientId>,
        /// Donors whose results disagreed with the winning pattern.
        dissenters: Vec<ClientId>,
    },
}

/// The per-unit vote counter.
#[derive(Debug)]
pub struct QuorumTally {
    needed: u32,
    candidates: Vec<Candidate>,
}

impl QuorumTally {
    /// A tally that folds once `needed` byte-identical votes agree.
    pub fn new(needed: u32) -> Self {
        assert!(needed >= 1, "a quorum needs at least one vote");
        Self {
            needed,
            candidates: Vec::new(),
        }
    }

    /// Votes required to agree.
    pub fn needed(&self) -> u32 {
        self.needed
    }

    /// Total votes recorded so far (across all candidates).
    pub fn votes(&self) -> u32 {
        self.candidates.iter().map(|c| c.voters.len() as u32).sum()
    }

    /// Distinct byte-patterns seen so far. Bounded by [`Self::votes`],
    /// which is bounded by the donor pool (one vote per donor).
    pub fn candidate_patterns(&self) -> usize {
        self.candidates.len()
    }

    /// Whether `client` has already voted on this unit.
    pub fn has_voted(&self, client: ClientId) -> bool {
        self.candidates.iter().any(|c| c.voters.contains(&client))
    }

    /// Records `client`'s candidate result, encoded as `bytes`. On
    /// [`VoteOutcome::Quorum`] the tally is consumed conceptually — the
    /// caller must drop it and fold the returned result exactly once.
    pub fn vote(&mut self, client: ClientId, bytes: Vec<u8>, result: TaskResult) -> VoteOutcome {
        if self.has_voted(client) {
            return VoteOutcome::AlreadyVoted;
        }
        let idx = match self.candidates.iter().position(|c| c.bytes == bytes) {
            Some(i) => i,
            None => {
                self.candidates.push(Candidate {
                    bytes,
                    result: None,
                    voters: Vec::new(),
                });
                self.candidates.len() - 1
            }
        };
        let c = &mut self.candidates[idx];
        c.voters.push(client);
        // Keep one live representative per pattern (restored candidates
        // start without one).
        c.result.get_or_insert(result);
        if (c.voters.len() as u32) < self.needed {
            return VoteOutcome::Pending;
        }
        let winner = self.candidates.swap_remove(idx);
        let mut dissenters: Vec<ClientId> = self
            .candidates
            .iter()
            .flat_map(|c| c.voters.iter().copied())
            .collect();
        dissenters.sort_unstable();
        VoteOutcome::Quorum {
            result: winner
                .result
                .expect("the quorum-completing vote is always live"),
            bytes: winner.bytes,
            agreed: winner.voters,
            dissenters,
        }
    }

    /// Restores a vote from the checkpoint log (bytes only, no live
    /// payload). Capped at `needed − 1` total votes so restored votes
    /// alone can never complete a quorum: the fold must be driven by a
    /// live result, which guarantees a recovered run never combines a
    /// half-voted unit twice (the original fold, had it happened, would
    /// have journaled a `Result` record and the unit would not have
    /// been restored at all). Returns whether the vote was kept.
    pub fn restore_vote(&mut self, client: ClientId, bytes: Vec<u8>) -> bool {
        if self.has_voted(client) || self.votes() + 1 >= self.needed {
            return false;
        }
        let idx = match self.candidates.iter().position(|c| c.bytes == bytes) {
            Some(i) => i,
            None => {
                self.candidates.push(Candidate {
                    bytes,
                    result: None,
                    voters: Vec::new(),
                });
                self.candidates.len() - 1
            }
        };
        self.candidates[idx].voters.push(client);
        true
    }

    /// `(client, encoded bytes)` of every recorded vote, sorted by
    /// client, for checkpointing in-flight quorum state.
    pub fn recorded_votes(&self) -> Vec<(ClientId, Vec<u8>)> {
        let mut v: Vec<(ClientId, Vec<u8>)> = self
            .candidates
            .iter()
            .flat_map(|c| c.voters.iter().map(|&cl| (cl, c.bytes.clone())))
            .collect();
        v.sort_unstable_by_key(|&(cl, _)| cl);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Payload;

    fn res(unit: u64) -> TaskResult {
        TaskResult {
            unit_id: unit,
            payload: Payload::new((), 0),
        }
    }

    #[test]
    fn quorum_fires_only_when_identical_votes_agree() {
        let mut t = QuorumTally::new(2);
        assert!(matches!(
            t.vote(0, vec![1, 2], res(9)),
            VoteOutcome::Pending
        ));
        assert!(matches!(
            t.vote(1, vec![1, 3], res(9)),
            VoteOutcome::Pending
        ));
        assert_eq!(t.candidate_patterns(), 2);
        match t.vote(2, vec![1, 2], res(9)) {
            VoteOutcome::Quorum {
                result,
                bytes,
                agreed,
                dissenters,
            } => {
                assert_eq!(result.unit_id, 9);
                assert_eq!(bytes, vec![1, 2]);
                assert_eq!(agreed, vec![0, 2]);
                assert_eq!(dissenters, vec![1]);
            }
            other => panic!("expected quorum, got {other:?}"),
        }
    }

    #[test]
    fn one_vote_per_donor() {
        let mut t = QuorumTally::new(2);
        assert!(matches!(t.vote(5, vec![7], res(1)), VoteOutcome::Pending));
        assert!(matches!(
            t.vote(5, vec![7], res(1)),
            VoteOutcome::AlreadyVoted
        ));
        assert!(matches!(
            t.vote(5, vec![8], res(1)),
            VoteOutcome::AlreadyVoted
        ));
        assert_eq!(t.votes(), 1);
    }

    #[test]
    fn needed_one_folds_immediately() {
        let mut t = QuorumTally::new(1);
        assert!(matches!(
            t.vote(3, vec![0xAB], res(4)),
            VoteOutcome::Quorum { .. }
        ));
    }

    #[test]
    fn restored_votes_count_but_never_complete_a_quorum() {
        let mut t = QuorumTally::new(2);
        t.restore_vote(0, vec![1, 2]);
        t.restore_vote(1, vec![1, 2]); // capped: would reach needed
        assert_eq!(t.votes(), 1, "restores cap at needed − 1");
        // The live vote completes the quorum using its own payload.
        match t.vote(2, vec![1, 2], res(8)) {
            VoteOutcome::Quorum { agreed, .. } => assert_eq!(agreed, vec![0, 2]),
            other => panic!("expected quorum, got {other:?}"),
        }
    }

    #[test]
    fn recorded_votes_round_trip() {
        let mut t = QuorumTally::new(3);
        let _ = t.vote(2, vec![9], res(1));
        let _ = t.vote(0, vec![7], res(1));
        assert_eq!(t.recorded_votes(), vec![(0, vec![7]), (2, vec![9])]);
    }
}
