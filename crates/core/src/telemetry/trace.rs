//! The trace half of the telemetry layer: work-unit lifecycle and
//! server-side events, the [`TraceSink`] trait, and the two built-in
//! sinks (in-memory ring buffer, JSONL file).
//!
//! Every event serializes to one flat JSON object per line with a fixed
//! field order, so a trace written on the simulator backend (virtual
//! clock) is *byte-deterministic*: the same `FaultPlan` and seed yield
//! the identical file, diffable across code changes. Events also parse
//! back ([`TraceEvent::from_json_line`]), which is what the report tool
//! and the span-completeness checker run on.

use crate::problem::UnitId;
use crate::sched::ClientId;
use crate::server::ProblemId;
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};

use super::metrics::fmt_f64;

/// Escapes `s` as a JSON string literal (with quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What happened. Field order here is the serialized field order.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A problem entered the server.
    ProblemSubmitted {
        /// Problem id.
        problem: ProblemId,
        /// Human-readable problem name.
        name: String,
    },
    /// A problem's final output is assembled.
    ProblemCompleted {
        /// Problem id.
        problem: ProblemId,
    },
    /// The data manager produced a fresh unit.
    UnitCreated {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// Modelled cost in abstract ops.
        cost_ops: f64,
    },
    /// A unit was leased to a client (`issued(machine)` in the paper's
    /// lifecycle).
    UnitIssued {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client the lease went to.
        client: ClientId,
        /// Whether this was an end-game redundant dispatch.
        redundant: bool,
    },
    /// A result was accepted and will be folded.
    UnitCompleted {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client that delivered it.
        client: ClientId,
        /// Lease-to-delivery latency in backend seconds (0 when the
        /// deliverer held no live lease — a rescued straggler result).
        latency: f64,
    },
    /// The accepted result was folded into the data manager
    /// (`combined`).
    UnitCombined {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
    },
    /// A duplicate / late result arrived for an already-complete unit.
    ResultWasted {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client that delivered it.
        client: ClientId,
    },
    /// The transport detected a corrupted result. This is the single
    /// canonical corruption event: every route (sim/thread delivery
    /// faults, TCP frame-CRC failure, TCP payload decode failure) funnels
    /// through [`crate::Server::result_corrupted`], which emits it.
    ResultCorrupted {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client whose result was mangled.
        client: ClientId,
    },
    /// A candidate result lost a quorum vote: a K-way redundant unit
    /// reached its byte-identical quorum and this client's candidate
    /// disagreed with the winning pattern. Emitted once per dissenting
    /// candidate by [`crate::Server`]'s quorum resolution, which also
    /// feeds the donor's reputation.
    ResultDisputed {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client whose candidate disagreed.
        client: ClientId,
    },
    /// A lease passed its deadline without a result.
    LeaseExpired {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client that held the lease.
        client: ClientId,
    },
    /// A unit went back on the reissue queue.
    UnitReissued {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// Why: `lease_expired`, `corrupted`, `client_lost` or
        /// `quorum_pending` (a non-final vote released its last lease).
        reason: String,
    },
    /// The server declared a client gone (goodbye or liveness sweep).
    ClientLost {
        /// The departed client.
        client: ClientId,
    },
    /// A donor machine joined the pool.
    MachineJoined {
        /// The client id it will use.
        client: ClientId,
    },
    /// A donor machine departed permanently.
    MachineDeparted {
        /// The departing client.
        client: ClientId,
    },
    /// A donor machine crashed (it will rejoin after `down_secs`).
    MachineCrashed {
        /// The crashing client.
        client: ClientId,
        /// How long it stays down.
        down_secs: f64,
    },
    /// A backend applied a delivery fault to a finished result
    /// (`drop`, `duplicate` or `corrupt`) before it reached the server.
    FaultInjected {
        /// The affected client.
        client: ClientId,
        /// The delivery action applied.
        action: String,
    },
    /// The TCP fault proxy mutated real bytes on the wire (`drop`,
    /// `duplicate` or `corrupt`).
    WireFault {
        /// The affected client.
        client: ClientId,
        /// The delivery action applied.
        action: String,
    },
    /// The TCP server's liveness sweep reclaimed silent clients.
    LivenessSweep {
        /// Number of clients declared gone by this sweep.
        stale: usize,
    },
    /// A record was appended to the checkpoint log (`issue`, `result`
    /// or `sched`).
    CheckpointWrite {
        /// The record type.
        kind: String,
    },
    /// Recovery replayed an issue record against a fresh data manager.
    ReplayIssue {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
    },
    /// Recovery re-folded a logged result.
    ReplayResult {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
    },
    /// Recovery finished rebuilding a server from a checkpoint log.
    RecoveryDone {
        /// Issue records replayed.
        replayed_issues: u64,
        /// Result records re-folded.
        replayed_results: u64,
        /// Units restored to the pending queue.
        pending_restored: u64,
        /// Whether a torn tail cut the log short.
        torn_tail: bool,
    },
    /// An application data manager crossed a stage boundary (DPRml's
    /// refine / insert / NNI barriers — the idle gaps in Figure 1).
    StageStarted {
        /// Problem id.
        problem: ProblemId,
        /// Stage name.
        stage: String,
    },
    /// Donor-side: the unit's payload (and chunks) finished arriving at
    /// the client — the end of the issue→donor transfer phase. Keyed by
    /// the same `(problem, unit, client)` correlation id as the
    /// server-side lease events, so donor-local activity lands in the
    /// same span.
    UnitDelivered {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The receiving client.
        client: ClientId,
    },
    /// Donor-side: the client started executing the unit (after any
    /// time queued behind an earlier unit in its prefetch pipeline).
    ComputeStarted {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The computing client.
        client: ClientId,
    },
    /// Donor-side: the client finished executing the unit. The gap to
    /// `unit_combined` is the result-return + fold ("combine") phase.
    ComputeFinished {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The computing client.
        client: ClientId,
    },
    /// Donor-side: a chunk fetch left the cache and hit the network.
    ChunkFetchStarted {
        /// The fetching client.
        client: ClientId,
        /// Content digest of the chunk.
        digest: u64,
    },
    /// Donor-side: the chunk arrived and verified.
    ChunkFetchFinished {
        /// The fetching client.
        client: ClientId,
        /// Content digest of the chunk.
        digest: u64,
        /// Whether a replica (vs the origin) served it.
        replica: bool,
    },
    /// Donor-side: the local chunk cache served a needed chunk.
    CacheHit {
        /// The client whose cache hit.
        client: ClientId,
        /// Content digest of the chunk.
        digest: u64,
    },
    /// Donor-side: a needed chunk was absent from the local cache.
    CacheMiss {
        /// The client whose cache missed.
        client: ClientId,
        /// Content digest of the chunk.
        digest: u64,
    },
    /// Donor-side: a routed replica candidate was skipped (dead or
    /// stalled) and the fetch moved down the failover ladder.
    ReplicaFailover {
        /// The fetching client.
        client: ClientId,
        /// Index of the skipped replica.
        replica: usize,
    },
    /// The health engine flagged a donor as a straggler/anomaly: its
    /// recent speed-normalized service time diverged from its own
    /// baseline by at least the configured ratio.
    DonorFlagged {
        /// The flagged donor.
        client: ClientId,
        /// Recent-over-baseline normalized service-time ratio at the
        /// moment of flagging.
        ratio: f64,
    },
    /// The health engine cleared a previously flagged donor (its
    /// normalized service time recovered below the clear threshold).
    DonorCleared {
        /// The recovered donor.
        client: ClientId,
        /// Recent-over-baseline ratio at the moment of clearing.
        ratio: f64,
    },
    /// A donor shipped its local metrics registry to the server
    /// (`MetricsReport` frame on the wire, modeled cadence on the sim).
    MetricsReported {
        /// The shipping donor.
        client: ClientId,
    },
}

impl EventKind {
    /// The `ev` field value.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ProblemSubmitted { .. } => "problem_submitted",
            EventKind::ProblemCompleted { .. } => "problem_completed",
            EventKind::UnitCreated { .. } => "unit_created",
            EventKind::UnitIssued { .. } => "unit_issued",
            EventKind::UnitCompleted { .. } => "unit_completed",
            EventKind::UnitCombined { .. } => "unit_combined",
            EventKind::ResultWasted { .. } => "result_wasted",
            EventKind::ResultCorrupted { .. } => "result_corrupted",
            EventKind::ResultDisputed { .. } => "result_disputed",
            EventKind::LeaseExpired { .. } => "lease_expired",
            EventKind::UnitReissued { .. } => "unit_reissued",
            EventKind::ClientLost { .. } => "client_lost",
            EventKind::MachineJoined { .. } => "machine_joined",
            EventKind::MachineDeparted { .. } => "machine_departed",
            EventKind::MachineCrashed { .. } => "machine_crashed",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::WireFault { .. } => "wire_fault",
            EventKind::LivenessSweep { .. } => "liveness_sweep",
            EventKind::CheckpointWrite { .. } => "checkpoint_write",
            EventKind::ReplayIssue { .. } => "replay_issue",
            EventKind::ReplayResult { .. } => "replay_result",
            EventKind::RecoveryDone { .. } => "recovery_done",
            EventKind::StageStarted { .. } => "stage_started",
            EventKind::UnitDelivered { .. } => "unit_delivered",
            EventKind::ComputeStarted { .. } => "compute_started",
            EventKind::ComputeFinished { .. } => "compute_finished",
            EventKind::ChunkFetchStarted { .. } => "chunk_fetch_started",
            EventKind::ChunkFetchFinished { .. } => "chunk_fetch_finished",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::ReplicaFailover { .. } => "replica_failover",
            EventKind::DonorFlagged { .. } => "donor_flagged",
            EventKind::DonorCleared { .. } => "donor_cleared",
            EventKind::MetricsReported { .. } => "metrics_reported",
        }
    }

    fn write_fields(&self, s: &mut String) {
        let u = |s: &mut String, k: &str, v: u64| {
            let _ = write!(s, ",\"{k}\":{v}");
        };
        let f = |s: &mut String, k: &str, v: f64| {
            let _ = write!(s, ",\"{k}\":{}", fmt_f64(v));
        };
        let b = |s: &mut String, k: &str, v: bool| {
            let _ = write!(s, ",\"{k}\":{v}");
        };
        let t = |s: &mut String, k: &str, v: &str| {
            let _ = write!(s, ",\"{k}\":{}", json_string(v));
        };
        match self {
            EventKind::ProblemSubmitted { problem, name } => {
                u(s, "problem", *problem as u64);
                t(s, "name", name);
            }
            EventKind::ProblemCompleted { problem } => u(s, "problem", *problem as u64),
            EventKind::UnitCreated {
                problem,
                unit,
                cost_ops,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                f(s, "cost_ops", *cost_ops);
            }
            EventKind::UnitIssued {
                problem,
                unit,
                client,
                redundant,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                u(s, "client", *client as u64);
                b(s, "redundant", *redundant);
            }
            EventKind::UnitCompleted {
                problem,
                unit,
                client,
                latency,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                u(s, "client", *client as u64);
                f(s, "latency", *latency);
            }
            EventKind::UnitCombined { problem, unit } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
            }
            EventKind::ResultWasted {
                problem,
                unit,
                client,
            }
            | EventKind::ResultCorrupted {
                problem,
                unit,
                client,
            }
            | EventKind::ResultDisputed {
                problem,
                unit,
                client,
            }
            | EventKind::LeaseExpired {
                problem,
                unit,
                client,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                u(s, "client", *client as u64);
            }
            EventKind::UnitReissued {
                problem,
                unit,
                reason,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                t(s, "reason", reason);
            }
            EventKind::ClientLost { client }
            | EventKind::MachineJoined { client }
            | EventKind::MachineDeparted { client } => u(s, "client", *client as u64),
            EventKind::MachineCrashed { client, down_secs } => {
                u(s, "client", *client as u64);
                f(s, "down_secs", *down_secs);
            }
            EventKind::FaultInjected { client, action }
            | EventKind::WireFault { client, action } => {
                u(s, "client", *client as u64);
                t(s, "action", action);
            }
            EventKind::LivenessSweep { stale } => u(s, "stale", *stale as u64),
            EventKind::CheckpointWrite { kind } => t(s, "kind", kind),
            EventKind::ReplayIssue { problem, unit }
            | EventKind::ReplayResult { problem, unit } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
            }
            EventKind::RecoveryDone {
                replayed_issues,
                replayed_results,
                pending_restored,
                torn_tail,
            } => {
                u(s, "replayed_issues", *replayed_issues);
                u(s, "replayed_results", *replayed_results);
                u(s, "pending_restored", *pending_restored);
                b(s, "torn_tail", *torn_tail);
            }
            EventKind::StageStarted { problem, stage } => {
                u(s, "problem", *problem as u64);
                t(s, "stage", stage);
            }
            EventKind::UnitDelivered {
                problem,
                unit,
                client,
            }
            | EventKind::ComputeStarted {
                problem,
                unit,
                client,
            }
            | EventKind::ComputeFinished {
                problem,
                unit,
                client,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                u(s, "client", *client as u64);
            }
            EventKind::ChunkFetchStarted { client, digest }
            | EventKind::CacheHit { client, digest }
            | EventKind::CacheMiss { client, digest } => {
                u(s, "client", *client as u64);
                t(s, "digest", &format!("{digest:016x}"));
            }
            EventKind::ChunkFetchFinished {
                client,
                digest,
                replica,
            } => {
                u(s, "client", *client as u64);
                t(s, "digest", &format!("{digest:016x}"));
                b(s, "replica", *replica);
            }
            EventKind::ReplicaFailover { client, replica } => {
                u(s, "client", *client as u64);
                u(s, "replica", *replica as u64);
            }
            EventKind::DonorFlagged { client, ratio }
            | EventKind::DonorCleared { client, ratio } => {
                u(s, "client", *client as u64);
                f(s, "ratio", *ratio);
            }
            EventKind::MetricsReported { client } => u(s, "client", *client as u64),
        }
    }
}

/// Chunk digests serialize as 16-hex-digit strings (a JSON number would
/// round large u64 values through f64 and lose low bits).
fn digest_field(hex: &str) -> Result<u64, String> {
    u64::from_str_radix(hex, 16).map_err(|e| format!("bad digest `{hex}`: {e}"))
}

/// One timestamped trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Backend time: virtual seconds on the simulator, scaled wall
    /// seconds on the thread/TCP backends.
    pub t: f64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Serializes to one flat JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"ev\":\"{}\"",
            fmt_f64(self.t),
            self.kind.name()
        );
        self.kind.write_fields(&mut s);
        s.push('}');
        s
    }

    /// Parses a line produced by [`TraceEvent::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        let num = |k: &str| -> Result<f64, String> {
            match fields.iter().find(|(n, _)| n == k) {
                Some((_, JsonVal::Num(x))) => Ok(*x),
                _ => Err(format!("missing numeric field `{k}` in {line}")),
            }
        };
        let uint = |k: &str| -> Result<u64, String> { num(k).map(|x| x as u64) };
        let boolean = |k: &str| -> Result<bool, String> {
            match fields.iter().find(|(n, _)| n == k) {
                Some((_, JsonVal::Bool(b))) => Ok(*b),
                _ => Err(format!("missing boolean field `{k}` in {line}")),
            }
        };
        let text = |k: &str| -> Result<String, String> {
            match fields.iter().find(|(n, _)| n == k) {
                Some((_, JsonVal::Str(v))) => Ok(v.clone()),
                _ => Err(format!("missing string field `{k}` in {line}")),
            }
        };
        let t = num("t")?;
        let ev = text("ev")?;
        let kind = match ev.as_str() {
            "problem_submitted" => EventKind::ProblemSubmitted {
                problem: uint("problem")? as ProblemId,
                name: text("name")?,
            },
            "problem_completed" => EventKind::ProblemCompleted {
                problem: uint("problem")? as ProblemId,
            },
            "unit_created" => EventKind::UnitCreated {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                cost_ops: num("cost_ops")?,
            },
            "unit_issued" => EventKind::UnitIssued {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
                redundant: boolean("redundant")?,
            },
            "unit_completed" => EventKind::UnitCompleted {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
                latency: num("latency")?,
            },
            "unit_combined" => EventKind::UnitCombined {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
            },
            "result_wasted" => EventKind::ResultWasted {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "result_corrupted" => EventKind::ResultCorrupted {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "result_disputed" => EventKind::ResultDisputed {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "lease_expired" => EventKind::LeaseExpired {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "unit_reissued" => EventKind::UnitReissued {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                reason: text("reason")?,
            },
            "client_lost" => EventKind::ClientLost {
                client: uint("client")? as ClientId,
            },
            "machine_joined" => EventKind::MachineJoined {
                client: uint("client")? as ClientId,
            },
            "machine_departed" => EventKind::MachineDeparted {
                client: uint("client")? as ClientId,
            },
            "machine_crashed" => EventKind::MachineCrashed {
                client: uint("client")? as ClientId,
                down_secs: num("down_secs")?,
            },
            "fault_injected" => EventKind::FaultInjected {
                client: uint("client")? as ClientId,
                action: text("action")?,
            },
            "wire_fault" => EventKind::WireFault {
                client: uint("client")? as ClientId,
                action: text("action")?,
            },
            "liveness_sweep" => EventKind::LivenessSweep {
                stale: uint("stale")? as usize,
            },
            "checkpoint_write" => EventKind::CheckpointWrite {
                kind: text("kind")?,
            },
            "replay_issue" => EventKind::ReplayIssue {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
            },
            "replay_result" => EventKind::ReplayResult {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
            },
            "recovery_done" => EventKind::RecoveryDone {
                replayed_issues: uint("replayed_issues")?,
                replayed_results: uint("replayed_results")?,
                pending_restored: uint("pending_restored")?,
                torn_tail: boolean("torn_tail")?,
            },
            "stage_started" => EventKind::StageStarted {
                problem: uint("problem")? as ProblemId,
                stage: text("stage")?,
            },
            "unit_delivered" => EventKind::UnitDelivered {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "compute_started" => EventKind::ComputeStarted {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "compute_finished" => EventKind::ComputeFinished {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "chunk_fetch_started" => EventKind::ChunkFetchStarted {
                client: uint("client")? as ClientId,
                digest: digest_field(&text("digest")?)?,
            },
            "chunk_fetch_finished" => EventKind::ChunkFetchFinished {
                client: uint("client")? as ClientId,
                digest: digest_field(&text("digest")?)?,
                replica: boolean("replica")?,
            },
            "cache_hit" => EventKind::CacheHit {
                client: uint("client")? as ClientId,
                digest: digest_field(&text("digest")?)?,
            },
            "cache_miss" => EventKind::CacheMiss {
                client: uint("client")? as ClientId,
                digest: digest_field(&text("digest")?)?,
            },
            "replica_failover" => EventKind::ReplicaFailover {
                client: uint("client")? as ClientId,
                replica: uint("replica")? as usize,
            },
            "donor_flagged" => EventKind::DonorFlagged {
                client: uint("client")? as ClientId,
                ratio: num("ratio")?,
            },
            "donor_cleared" => EventKind::DonorCleared {
                client: uint("client")? as ClientId,
                ratio: num("ratio")?,
            },
            "metrics_reported" => EventKind::MetricsReported {
                client: uint("client")? as ClientId,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(Self { t, kind })
    }
}

// ------------------------------------------------ flat JSON parsing

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Num(f64),
    Str(String),
    Bool(bool),
}

/// Parses one flat (non-nested) JSON object into ordered key/value
/// pairs. Only the subset this module emits is accepted.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut i = 0usize;
    let err = |msg: &str, i: usize| format!("{msg} at char {i}: {line}");
    let skip_ws = |bytes: &[char], i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    fn parse_string(bytes: &[char], i: &mut usize) -> Result<String, String> {
        if bytes.get(*i) != Some(&'"') {
            return Err("expected string".into());
        }
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = bytes.get(*i).copied().ok_or("truncated escape")?;
                    *i += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            if *i + 4 > bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex: String = bytes[*i..*i + 4].iter().collect();
                            *i += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u: {e}"))?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("unsupported escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }
    skip_ws(&bytes, &mut i);
    if bytes.get(i) != Some(&'{') {
        return Err(err("expected '{'", i));
    }
    i += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(&bytes, &mut i);
        if bytes.get(i) == Some(&'}') {
            i += 1;
            break;
        }
        let key = parse_string(&bytes, &mut i).map_err(|e| err(&e, i))?;
        skip_ws(&bytes, &mut i);
        if bytes.get(i) != Some(&':') {
            return Err(err("expected ':'", i));
        }
        i += 1;
        skip_ws(&bytes, &mut i);
        let val = match bytes.get(i) {
            Some(&'"') => JsonVal::Str(parse_string(&bytes, &mut i).map_err(|e| err(&e, i))?),
            Some(&'t') if bytes[i..].starts_with(&['t', 'r', 'u', 'e']) => {
                i += 4;
                JsonVal::Bool(true)
            }
            Some(&'f') if bytes[i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
                i += 5;
                JsonVal::Bool(false)
            }
            Some(&'n') if bytes[i..].starts_with(&['n', 'u', 'l', 'l']) => {
                i += 4;
                JsonVal::Num(f64::NAN)
            }
            Some(_) => {
                let start = i;
                while i < bytes.len() && !matches!(bytes[i], ',' | '}') && !bytes[i].is_whitespace()
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                JsonVal::Num(
                    text.parse::<f64>()
                        .map_err(|e| err(&format!("bad number `{text}`: {e}"), start))?,
                )
            }
            None => return Err(err("truncated object", i)),
        };
        fields.push((key, val));
        skip_ws(&bytes, &mut i);
        match bytes.get(i) {
            Some(&',') => i += 1,
            Some(&'}') => {}
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
    skip_ws(&bytes, &mut i);
    if i != bytes.len() {
        return Err(err("trailing garbage", i));
    }
    Ok(fields)
}

// ----------------------------------------------------------- sinks

/// Where trace events go. Implementations must be cheap: the emitting
/// thread holds the telemetry lock for the duration of `record`.
pub trait TraceSink: Send {
    /// Consumes one event.
    fn record(&mut self, ev: &TraceEvent);
    /// Flushes any buffered output (e.g. at end of run).
    fn flush(&mut self) {}
}

/// Read side of a [`RingSink`]: a bounded in-memory buffer of the most
/// recent events.
#[derive(Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
}

impl RingHandle {
    /// Copies out the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Keeps the most recent `capacity` events in memory.
pub struct RingSink {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl RingSink {
    /// A ring of the given capacity plus its read handle.
    pub fn new(capacity: usize) -> (Self, RingHandle) {
        assert!(capacity > 0, "ring capacity must be positive");
        let buf = Arc::new(Mutex::new(VecDeque::with_capacity(capacity.min(1024))));
        (
            Self {
                buf: buf.clone(),
                capacity,
            },
            RingHandle { buf },
        )
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// Writes one JSON object per line to a file, buffered.
pub struct JsonlSink {
    out: BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        let _ = self.out.write_all(ev.to_json_line().as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

// ------------------------------------------- span-completeness check

/// Verifies the span-completeness invariant over a whole-run trace:
/// every `unit_issued` lease is eventually resolved — by a completion
/// of the unit (any deliverer; completion cancels sibling redundant
/// leases), a `lease_expired` / `result_corrupted` for that exact
/// lease, the loss of the client, or the completion of the whole
/// problem (which clears its in-flight table) — and no unit completes
/// without ever having been issued (or replayed from a checkpoint).
///
/// Donor-side `compute_started` sub-spans are held to the same
/// standard: each must close — naturally via `compute_finished`, or via
/// a fault event (lease expiry / corruption / dispute of that exact
/// lease, loss / crash / departure of the donor, completion of the unit
/// by a sibling, or completion of the whole problem). A
/// `compute_finished` with no open sub-span is legal (the span was
/// already fault-closed and the donor finished anyway).
pub fn verify_spans(events: &[TraceEvent]) -> Result<(), String> {
    let mut open: BTreeSet<(ProblemId, UnitId, ClientId)> = BTreeSet::new();
    let mut computing: BTreeSet<(ProblemId, UnitId, ClientId)> = BTreeSet::new();
    let mut ever_issued: BTreeSet<(ProblemId, UnitId)> = BTreeSet::new();
    for ev in events {
        match &ev.kind {
            EventKind::UnitIssued {
                problem,
                unit,
                client,
                ..
            } => {
                open.insert((*problem, *unit, *client));
                ever_issued.insert((*problem, *unit));
            }
            EventKind::ReplayIssue { problem, unit } => {
                ever_issued.insert((*problem, *unit));
            }
            EventKind::ComputeStarted {
                problem,
                unit,
                client,
            } => {
                computing.insert((*problem, *unit, *client));
            }
            EventKind::ComputeFinished {
                problem,
                unit,
                client,
            } => {
                computing.remove(&(*problem, *unit, *client));
            }
            EventKind::UnitCompleted { problem, unit, .. } => {
                if !ever_issued.contains(&(*problem, *unit)) {
                    return Err(format!(
                        "unit {unit} of problem {problem} completed at t={} without ever being issued",
                        ev.t
                    ));
                }
                open.retain(|&(p, u, _)| !(p == *problem && u == *unit));
                computing.retain(|&(p, u, _)| !(p == *problem && u == *unit));
            }
            EventKind::LeaseExpired {
                problem,
                unit,
                client,
            }
            | EventKind::ResultCorrupted {
                problem,
                unit,
                client,
            }
            | EventKind::ResultDisputed {
                problem,
                unit,
                client,
            } => {
                open.remove(&(*problem, *unit, *client));
                computing.remove(&(*problem, *unit, *client));
            }
            EventKind::ClientLost { client }
            | EventKind::MachineCrashed { client, .. }
            | EventKind::MachineDeparted { client } => {
                open.retain(|&(_, _, c)| c != *client);
                computing.retain(|&(_, _, c)| c != *client);
            }
            EventKind::ProblemCompleted { problem } => {
                open.retain(|&(p, _, _)| p != *problem);
                computing.retain(|&(p, _, _)| p != *problem);
            }
            _ => {}
        }
    }
    if !open.is_empty() {
        return Err(format!("unresolved leases at end of trace: {open:?}"));
    }
    if !computing.is_empty() {
        return Err(format!(
            "unresolved compute sub-spans at end of trace: {computing:?}"
        ));
    }
    Ok(())
}

/// Four-phase breakdown of one completed unit's end-to-end span, from
/// its last `unit_issued` to its `unit_combined`, as seen by the client
/// that won the lease:
///
/// * `transfer` — issue to donor-side `unit_delivered` (payload +
///   chunks on the wire);
/// * `queue_wait` — delivery to `compute_started` (time parked in the
///   donor's prefetch pipeline);
/// * `compute` — `compute_started` to `compute_finished` (kernel time);
/// * `combine` — `compute_finished` to `unit_combined` (result return
///   and server-side fold).
///
/// The four phases telescope: they sum to exactly the span length.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitPhases {
    /// Problem id.
    pub problem: ProblemId,
    /// Unit id.
    pub unit: UnitId,
    /// The client whose result was accepted.
    pub client: ClientId,
    /// Backend time of the winning lease's issue.
    pub issued_at: f64,
    /// Issue → donor delivery.
    pub transfer: f64,
    /// Donor delivery → compute start.
    pub queue_wait: f64,
    /// Compute start → compute finish.
    pub compute: f64,
    /// Compute finish → server-side fold.
    pub combine: f64,
}

impl UnitPhases {
    /// Total span length (sum of the four phases).
    pub fn span(&self) -> f64 {
        self.transfer + self.queue_wait + self.compute + self.combine
    }
}

/// Extracts per-unit phase breakdowns from a whole-run trace. A unit
/// contributes one entry when its winning `(problem, unit, client)`
/// lease carries the full `unit_issued` → `unit_delivered` →
/// `compute_started` → `compute_finished` → `unit_completed` →
/// `unit_combined` chain; completed units missing any donor-side link
/// (e.g. rescued straggler results or checkpoint replays) are tallied
/// in the returned `incomplete` count instead. When the same client is
/// reissued the same unit, the latest attempt's timestamps win.
pub fn phase_breakdowns(events: &[TraceEvent]) -> (Vec<UnitPhases>, u64) {
    use std::collections::BTreeMap;
    type Key = (ProblemId, UnitId, ClientId);
    let mut issued: BTreeMap<Key, f64> = BTreeMap::new();
    let mut delivered: BTreeMap<Key, f64> = BTreeMap::new();
    let mut started: BTreeMap<Key, f64> = BTreeMap::new();
    let mut finished: BTreeMap<Key, f64> = BTreeMap::new();
    // Completed units waiting for their `unit_combined`, carrying the
    // winning client and its (issue, delivery, start, finish) times.
    type PendingChain = (ClientId, f64, f64, f64, f64);
    let mut pending: BTreeMap<(ProblemId, UnitId), PendingChain> = BTreeMap::new();
    let mut out = Vec::new();
    let mut incomplete = 0u64;
    for ev in events {
        match &ev.kind {
            EventKind::UnitIssued {
                problem,
                unit,
                client,
                ..
            } => {
                issued.insert((*problem, *unit, *client), ev.t);
            }
            EventKind::UnitDelivered {
                problem,
                unit,
                client,
            } => {
                delivered.insert((*problem, *unit, *client), ev.t);
            }
            EventKind::ComputeStarted {
                problem,
                unit,
                client,
            } => {
                started.insert((*problem, *unit, *client), ev.t);
            }
            EventKind::ComputeFinished {
                problem,
                unit,
                client,
            } => {
                finished.insert((*problem, *unit, *client), ev.t);
            }
            EventKind::UnitCompleted {
                problem,
                unit,
                client,
                ..
            } => {
                let key = (*problem, *unit, *client);
                match (
                    issued.get(&key),
                    delivered.get(&key),
                    started.get(&key),
                    finished.get(&key),
                ) {
                    (Some(&t_iss), Some(&t_del), Some(&t_start), Some(&t_fin)) => {
                        pending.insert((*problem, *unit), (*client, t_iss, t_del, t_start, t_fin));
                    }
                    _ => incomplete += 1,
                }
            }
            EventKind::UnitCombined { problem, unit } => {
                if let Some((client, t_iss, t_del, t_start, t_fin)) =
                    pending.remove(&(*problem, *unit))
                {
                    out.push(UnitPhases {
                        problem: *problem,
                        unit: *unit,
                        client,
                        issued_at: t_iss,
                        transfer: t_del - t_iss,
                        queue_wait: t_start - t_del,
                        compute: t_fin - t_start,
                        combine: ev.t - t_fin,
                    });
                }
            }
            _ => {}
        }
    }
    // Completed but never combined: the chain is broken, count it.
    incomplete += pending.len() as u64;
    (out, incomplete)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: EventKind) -> TraceEvent {
        TraceEvent { t, kind }
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        let events = vec![
            ev(
                0.0,
                EventKind::ProblemSubmitted {
                    problem: 0,
                    name: "dsearch \"x\"\n".into(),
                },
            ),
            ev(
                1.5,
                EventKind::UnitCreated {
                    problem: 0,
                    unit: 1,
                    cost_ops: 1.5e7,
                },
            ),
            ev(
                1.5,
                EventKind::UnitIssued {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    redundant: false,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCompleted {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    latency: 0.5,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCombined {
                    problem: 0,
                    unit: 1,
                },
            ),
            ev(
                2.5,
                EventKind::ResultWasted {
                    problem: 0,
                    unit: 1,
                    client: 3,
                },
            ),
            ev(
                3.0,
                EventKind::ResultCorrupted {
                    problem: 0,
                    unit: 2,
                    client: 1,
                },
            ),
            ev(
                3.5,
                EventKind::ResultDisputed {
                    problem: 0,
                    unit: 2,
                    client: 4,
                },
            ),
            ev(
                4.0,
                EventKind::LeaseExpired {
                    problem: 0,
                    unit: 3,
                    client: 0,
                },
            ),
            ev(
                4.0,
                EventKind::UnitReissued {
                    problem: 0,
                    unit: 3,
                    reason: "lease_expired".into(),
                },
            ),
            ev(5.0, EventKind::ClientLost { client: 4 }),
            ev(0.0, EventKind::MachineJoined { client: 0 }),
            ev(9.0, EventKind::MachineDeparted { client: 5 }),
            ev(
                9.5,
                EventKind::MachineCrashed {
                    client: 1,
                    down_secs: 12.5,
                },
            ),
            ev(
                10.0,
                EventKind::FaultInjected {
                    client: 1,
                    action: "drop".into(),
                },
            ),
            ev(
                10.5,
                EventKind::WireFault {
                    client: 2,
                    action: "corrupt".into(),
                },
            ),
            ev(11.0, EventKind::LivenessSweep { stale: 2 }),
            ev(
                11.5,
                EventKind::CheckpointWrite {
                    kind: "result".into(),
                },
            ),
            ev(
                12.0,
                EventKind::ReplayIssue {
                    problem: 0,
                    unit: 7,
                },
            ),
            ev(
                12.5,
                EventKind::ReplayResult {
                    problem: 0,
                    unit: 7,
                },
            ),
            ev(
                13.0,
                EventKind::RecoveryDone {
                    replayed_issues: 3,
                    replayed_results: 2,
                    pending_restored: 1,
                    torn_tail: true,
                },
            ),
            ev(
                14.0,
                EventKind::StageStarted {
                    problem: 0,
                    stage: "insert:taxon 3".into(),
                },
            ),
            ev(
                14.5,
                EventKind::UnitDelivered {
                    problem: 0,
                    unit: 8,
                    client: 2,
                },
            ),
            ev(
                14.6,
                EventKind::ComputeStarted {
                    problem: 0,
                    unit: 8,
                    client: 2,
                },
            ),
            ev(
                15.0,
                EventKind::ComputeFinished {
                    problem: 0,
                    unit: 8,
                    client: 2,
                },
            ),
            ev(
                15.1,
                EventKind::ChunkFetchStarted {
                    client: 2,
                    digest: 0xdead_beef_cafe_f00d,
                },
            ),
            ev(
                15.2,
                EventKind::ChunkFetchFinished {
                    client: 2,
                    digest: 0xdead_beef_cafe_f00d,
                    replica: true,
                },
            ),
            ev(
                15.3,
                EventKind::CacheHit {
                    client: 2,
                    digest: u64::MAX,
                },
            ),
            ev(
                15.4,
                EventKind::CacheMiss {
                    client: 2,
                    digest: 7,
                },
            ),
            ev(
                15.5,
                EventKind::ReplicaFailover {
                    client: 2,
                    replica: 1,
                },
            ),
            ev(
                16.0,
                EventKind::DonorFlagged {
                    client: 3,
                    ratio: 9.75,
                },
            ),
            ev(
                17.0,
                EventKind::DonorCleared {
                    client: 3,
                    ratio: 1.25,
                },
            ),
            ev(18.0, EventKind::MetricsReported { client: 3 }),
            ev(20.0, EventKind::ProblemCompleted { problem: 0 }),
        ];
        for e in events {
            let line = e.to_json_line();
            let back = TraceEvent::from_json_line(&line)
                .unwrap_or_else(|err| panic!("parse failed for {line}: {err}"));
            assert_eq!(back, e, "round trip for {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{}",
            "not json",
            "{\"t\":1.0}",
            "{\"t\":1.0,\"ev\":\"no_such_event\"}",
            "{\"t\":1.0,\"ev\":\"unit_combined\"}",
            "{\"t\":abc,\"ev\":\"client_lost\",\"client\":0}",
        ] {
            assert!(TraceEvent::from_json_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let (mut sink, handle) = RingSink::new(2);
        for i in 0..4 {
            sink.record(&ev(i as f64, EventKind::ClientLost { client: i }));
        }
        let got = handle.events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].t, 2.0);
        assert_eq!(got[1].t, 3.0);
    }

    #[test]
    fn span_checker_accepts_resolved_and_rejects_dangling() {
        let ok = vec![
            ev(
                0.0,
                EventKind::UnitIssued {
                    problem: 0,
                    unit: 1,
                    client: 0,
                    redundant: false,
                },
            ),
            ev(
                1.0,
                EventKind::UnitIssued {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    redundant: true,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCompleted {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    latency: 1.0,
                },
            ),
        ];
        verify_spans(&ok).expect("completion resolves sibling redundant lease");

        let dangling = vec![ev(
            0.0,
            EventKind::UnitIssued {
                problem: 0,
                unit: 1,
                client: 0,
                redundant: false,
            },
        )];
        assert!(verify_spans(&dangling).is_err(), "open lease must fail");

        let orphan = vec![ev(
            0.0,
            EventKind::UnitCompleted {
                problem: 0,
                unit: 9,
                client: 0,
                latency: 0.0,
            },
        )];
        assert!(
            verify_spans(&orphan).is_err(),
            "completion without issue must fail"
        );
    }

    fn issue(t: f64, unit: UnitId, client: ClientId) -> TraceEvent {
        ev(
            t,
            EventKind::UnitIssued {
                problem: 0,
                unit,
                client,
                redundant: false,
            },
        )
    }

    fn phase_chain(unit: UnitId, client: ClientId, t0: f64) -> Vec<TraceEvent> {
        vec![
            issue(t0, unit, client),
            ev(
                t0 + 1.0,
                EventKind::UnitDelivered {
                    problem: 0,
                    unit,
                    client,
                },
            ),
            ev(
                t0 + 1.5,
                EventKind::ComputeStarted {
                    problem: 0,
                    unit,
                    client,
                },
            ),
            ev(
                t0 + 4.0,
                EventKind::ComputeFinished {
                    problem: 0,
                    unit,
                    client,
                },
            ),
            ev(
                t0 + 4.25,
                EventKind::UnitCompleted {
                    problem: 0,
                    unit,
                    client,
                    latency: 4.25,
                },
            ),
            ev(t0 + 4.5, EventKind::UnitCombined { problem: 0, unit }),
        ]
    }

    #[test]
    fn compute_subspans_must_close() {
        // Natural close.
        verify_spans(&phase_chain(1, 0, 0.0)).expect("finished compute span is clean");

        // A compute span left dangling fails (all leases resolved, so
        // the compute-specific check is what trips).
        let dangling = vec![
            issue(0.0, 1, 0),
            ev(
                1.0,
                EventKind::ComputeStarted {
                    problem: 0,
                    unit: 1,
                    client: 0,
                },
            ),
            ev(
                2.0,
                EventKind::LeaseExpired {
                    problem: 0,
                    unit: 1,
                    client: 0,
                },
            ),
            ev(
                2.5,
                EventKind::ComputeStarted {
                    problem: 0,
                    unit: 2,
                    client: 1,
                },
            ),
        ];
        let err = verify_spans(&dangling).expect_err("dangling compute span must fail");
        assert!(err.contains("compute sub-spans"), "got: {err}");

        // A donor crash mid-compute closes the orphan span.
        let crashed = vec![
            issue(0.0, 1, 0),
            ev(
                1.0,
                EventKind::ComputeStarted {
                    problem: 0,
                    unit: 1,
                    client: 0,
                },
            ),
            ev(
                2.0,
                EventKind::MachineCrashed {
                    client: 0,
                    down_secs: 30.0,
                },
            ),
        ];
        verify_spans(&crashed).expect("crash fault-closes the orphan span and lease");

        // A sibling completing the unit closes the slower donor's span;
        // the slow donor's late compute_finished is then a no-op.
        let sibling = vec![
            issue(0.0, 1, 0),
            issue(0.0, 1, 1),
            ev(
                1.0,
                EventKind::ComputeStarted {
                    problem: 0,
                    unit: 1,
                    client: 0,
                },
            ),
            ev(
                1.0,
                EventKind::ComputeStarted {
                    problem: 0,
                    unit: 1,
                    client: 1,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCompleted {
                    problem: 0,
                    unit: 1,
                    client: 1,
                    latency: 2.0,
                },
            ),
            ev(
                3.0,
                EventKind::ComputeFinished {
                    problem: 0,
                    unit: 1,
                    client: 0,
                },
            ),
        ];
        verify_spans(&sibling).expect("sibling completion closes both compute spans");
    }

    #[test]
    fn phase_breakdowns_telescope_to_span_length() {
        let trace = phase_chain(1, 0, 10.0);
        let (phases, incomplete) = phase_breakdowns(&trace);
        assert_eq!(incomplete, 0);
        assert_eq!(phases.len(), 1);
        let p = &phases[0];
        assert_eq!((p.problem, p.unit, p.client), (0, 1, 0));
        assert_eq!(p.issued_at, 10.0);
        assert_eq!(p.transfer, 1.0);
        assert_eq!(p.queue_wait, 0.5);
        assert_eq!(p.compute, 2.5);
        assert_eq!(p.combine, 0.5);
        assert!((p.span() - 4.5).abs() < 1e-12, "span telescopes");
    }

    #[test]
    fn phase_breakdowns_count_broken_chains() {
        // Completed without any donor-side events: rescued result.
        let rescue = vec![
            issue(0.0, 1, 0),
            ev(
                2.0,
                EventKind::UnitCompleted {
                    problem: 0,
                    unit: 1,
                    client: 0,
                    latency: 2.0,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCombined {
                    problem: 0,
                    unit: 1,
                },
            ),
        ];
        let (phases, incomplete) = phase_breakdowns(&rescue);
        assert!(phases.is_empty());
        assert_eq!(incomplete, 1);

        // Reissue to the same client: latest attempt's timestamps win.
        let mut reissued = phase_chain(1, 0, 0.0);
        reissued.truncate(4); // first attempt dies after compute_finished
        reissued.push(ev(
            5.0,
            EventKind::LeaseExpired {
                problem: 0,
                unit: 1,
                client: 0,
            },
        ));
        reissued.extend(phase_chain(1, 0, 100.0));
        let (phases, incomplete) = phase_breakdowns(&reissued);
        assert_eq!(incomplete, 0);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].issued_at, 100.0);
    }

    #[test]
    fn problem_completion_clears_its_leases() {
        let trace = vec![
            ev(
                0.0,
                EventKind::UnitIssued {
                    problem: 1,
                    unit: 5,
                    client: 0,
                    redundant: false,
                },
            ),
            ev(3.0, EventKind::ProblemCompleted { problem: 1 }),
        ];
        verify_spans(&trace).expect("problem completion resolves leases");
    }
}
