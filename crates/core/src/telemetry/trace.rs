//! The trace half of the telemetry layer: work-unit lifecycle and
//! server-side events, the [`TraceSink`] trait, and the two built-in
//! sinks (in-memory ring buffer, JSONL file).
//!
//! Every event serializes to one flat JSON object per line with a fixed
//! field order, so a trace written on the simulator backend (virtual
//! clock) is *byte-deterministic*: the same `FaultPlan` and seed yield
//! the identical file, diffable across code changes. Events also parse
//! back ([`TraceEvent::from_json_line`]), which is what the report tool
//! and the span-completeness checker run on.

use crate::problem::UnitId;
use crate::sched::ClientId;
use crate::server::ProblemId;
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::io::{BufWriter, Write};
use std::sync::{Arc, Mutex};

use super::metrics::fmt_f64;

/// Escapes `s` as a JSON string literal (with quotes).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// What happened. Field order here is the serialized field order.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A problem entered the server.
    ProblemSubmitted {
        /// Problem id.
        problem: ProblemId,
        /// Human-readable problem name.
        name: String,
    },
    /// A problem's final output is assembled.
    ProblemCompleted {
        /// Problem id.
        problem: ProblemId,
    },
    /// The data manager produced a fresh unit.
    UnitCreated {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// Modelled cost in abstract ops.
        cost_ops: f64,
    },
    /// A unit was leased to a client (`issued(machine)` in the paper's
    /// lifecycle).
    UnitIssued {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client the lease went to.
        client: ClientId,
        /// Whether this was an end-game redundant dispatch.
        redundant: bool,
    },
    /// A result was accepted and will be folded.
    UnitCompleted {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client that delivered it.
        client: ClientId,
        /// Lease-to-delivery latency in backend seconds (0 when the
        /// deliverer held no live lease — a rescued straggler result).
        latency: f64,
    },
    /// The accepted result was folded into the data manager
    /// (`combined`).
    UnitCombined {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
    },
    /// A duplicate / late result arrived for an already-complete unit.
    ResultWasted {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client that delivered it.
        client: ClientId,
    },
    /// The transport detected a corrupted result. This is the single
    /// canonical corruption event: every route (sim/thread delivery
    /// faults, TCP frame-CRC failure, TCP payload decode failure) funnels
    /// through [`crate::Server::result_corrupted`], which emits it.
    ResultCorrupted {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client whose result was mangled.
        client: ClientId,
    },
    /// A candidate result lost a quorum vote: a K-way redundant unit
    /// reached its byte-identical quorum and this client's candidate
    /// disagreed with the winning pattern. Emitted once per dissenting
    /// candidate by [`crate::Server`]'s quorum resolution, which also
    /// feeds the donor's reputation.
    ResultDisputed {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client whose candidate disagreed.
        client: ClientId,
    },
    /// A lease passed its deadline without a result.
    LeaseExpired {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// The client that held the lease.
        client: ClientId,
    },
    /// A unit went back on the reissue queue.
    UnitReissued {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
        /// Why: `lease_expired`, `corrupted`, `client_lost` or
        /// `quorum_pending` (a non-final vote released its last lease).
        reason: String,
    },
    /// The server declared a client gone (goodbye or liveness sweep).
    ClientLost {
        /// The departed client.
        client: ClientId,
    },
    /// A donor machine joined the pool.
    MachineJoined {
        /// The client id it will use.
        client: ClientId,
    },
    /// A donor machine departed permanently.
    MachineDeparted {
        /// The departing client.
        client: ClientId,
    },
    /// A donor machine crashed (it will rejoin after `down_secs`).
    MachineCrashed {
        /// The crashing client.
        client: ClientId,
        /// How long it stays down.
        down_secs: f64,
    },
    /// A backend applied a delivery fault to a finished result
    /// (`drop`, `duplicate` or `corrupt`) before it reached the server.
    FaultInjected {
        /// The affected client.
        client: ClientId,
        /// The delivery action applied.
        action: String,
    },
    /// The TCP fault proxy mutated real bytes on the wire (`drop`,
    /// `duplicate` or `corrupt`).
    WireFault {
        /// The affected client.
        client: ClientId,
        /// The delivery action applied.
        action: String,
    },
    /// The TCP server's liveness sweep reclaimed silent clients.
    LivenessSweep {
        /// Number of clients declared gone by this sweep.
        stale: usize,
    },
    /// A record was appended to the checkpoint log (`issue`, `result`
    /// or `sched`).
    CheckpointWrite {
        /// The record type.
        kind: String,
    },
    /// Recovery replayed an issue record against a fresh data manager.
    ReplayIssue {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
    },
    /// Recovery re-folded a logged result.
    ReplayResult {
        /// Problem id.
        problem: ProblemId,
        /// Unit id.
        unit: UnitId,
    },
    /// Recovery finished rebuilding a server from a checkpoint log.
    RecoveryDone {
        /// Issue records replayed.
        replayed_issues: u64,
        /// Result records re-folded.
        replayed_results: u64,
        /// Units restored to the pending queue.
        pending_restored: u64,
        /// Whether a torn tail cut the log short.
        torn_tail: bool,
    },
    /// An application data manager crossed a stage boundary (DPRml's
    /// refine / insert / NNI barriers — the idle gaps in Figure 1).
    StageStarted {
        /// Problem id.
        problem: ProblemId,
        /// Stage name.
        stage: String,
    },
}

impl EventKind {
    /// The `ev` field value.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ProblemSubmitted { .. } => "problem_submitted",
            EventKind::ProblemCompleted { .. } => "problem_completed",
            EventKind::UnitCreated { .. } => "unit_created",
            EventKind::UnitIssued { .. } => "unit_issued",
            EventKind::UnitCompleted { .. } => "unit_completed",
            EventKind::UnitCombined { .. } => "unit_combined",
            EventKind::ResultWasted { .. } => "result_wasted",
            EventKind::ResultCorrupted { .. } => "result_corrupted",
            EventKind::ResultDisputed { .. } => "result_disputed",
            EventKind::LeaseExpired { .. } => "lease_expired",
            EventKind::UnitReissued { .. } => "unit_reissued",
            EventKind::ClientLost { .. } => "client_lost",
            EventKind::MachineJoined { .. } => "machine_joined",
            EventKind::MachineDeparted { .. } => "machine_departed",
            EventKind::MachineCrashed { .. } => "machine_crashed",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::WireFault { .. } => "wire_fault",
            EventKind::LivenessSweep { .. } => "liveness_sweep",
            EventKind::CheckpointWrite { .. } => "checkpoint_write",
            EventKind::ReplayIssue { .. } => "replay_issue",
            EventKind::ReplayResult { .. } => "replay_result",
            EventKind::RecoveryDone { .. } => "recovery_done",
            EventKind::StageStarted { .. } => "stage_started",
        }
    }

    fn write_fields(&self, s: &mut String) {
        let u = |s: &mut String, k: &str, v: u64| {
            let _ = write!(s, ",\"{k}\":{v}");
        };
        let f = |s: &mut String, k: &str, v: f64| {
            let _ = write!(s, ",\"{k}\":{}", fmt_f64(v));
        };
        let b = |s: &mut String, k: &str, v: bool| {
            let _ = write!(s, ",\"{k}\":{v}");
        };
        let t = |s: &mut String, k: &str, v: &str| {
            let _ = write!(s, ",\"{k}\":{}", json_string(v));
        };
        match self {
            EventKind::ProblemSubmitted { problem, name } => {
                u(s, "problem", *problem as u64);
                t(s, "name", name);
            }
            EventKind::ProblemCompleted { problem } => u(s, "problem", *problem as u64),
            EventKind::UnitCreated {
                problem,
                unit,
                cost_ops,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                f(s, "cost_ops", *cost_ops);
            }
            EventKind::UnitIssued {
                problem,
                unit,
                client,
                redundant,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                u(s, "client", *client as u64);
                b(s, "redundant", *redundant);
            }
            EventKind::UnitCompleted {
                problem,
                unit,
                client,
                latency,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                u(s, "client", *client as u64);
                f(s, "latency", *latency);
            }
            EventKind::UnitCombined { problem, unit } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
            }
            EventKind::ResultWasted {
                problem,
                unit,
                client,
            }
            | EventKind::ResultCorrupted {
                problem,
                unit,
                client,
            }
            | EventKind::ResultDisputed {
                problem,
                unit,
                client,
            }
            | EventKind::LeaseExpired {
                problem,
                unit,
                client,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                u(s, "client", *client as u64);
            }
            EventKind::UnitReissued {
                problem,
                unit,
                reason,
            } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
                t(s, "reason", reason);
            }
            EventKind::ClientLost { client }
            | EventKind::MachineJoined { client }
            | EventKind::MachineDeparted { client } => u(s, "client", *client as u64),
            EventKind::MachineCrashed { client, down_secs } => {
                u(s, "client", *client as u64);
                f(s, "down_secs", *down_secs);
            }
            EventKind::FaultInjected { client, action }
            | EventKind::WireFault { client, action } => {
                u(s, "client", *client as u64);
                t(s, "action", action);
            }
            EventKind::LivenessSweep { stale } => u(s, "stale", *stale as u64),
            EventKind::CheckpointWrite { kind } => t(s, "kind", kind),
            EventKind::ReplayIssue { problem, unit }
            | EventKind::ReplayResult { problem, unit } => {
                u(s, "problem", *problem as u64);
                u(s, "unit", *unit);
            }
            EventKind::RecoveryDone {
                replayed_issues,
                replayed_results,
                pending_restored,
                torn_tail,
            } => {
                u(s, "replayed_issues", *replayed_issues);
                u(s, "replayed_results", *replayed_results);
                u(s, "pending_restored", *pending_restored);
                b(s, "torn_tail", *torn_tail);
            }
            EventKind::StageStarted { problem, stage } => {
                u(s, "problem", *problem as u64);
                t(s, "stage", stage);
            }
        }
    }
}

/// One timestamped trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Backend time: virtual seconds on the simulator, scaled wall
    /// seconds on the thread/TCP backends.
    pub t: f64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Serializes to one flat JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"t\":{},\"ev\":\"{}\"",
            fmt_f64(self.t),
            self.kind.name()
        );
        self.kind.write_fields(&mut s);
        s.push('}');
        s
    }

    /// Parses a line produced by [`TraceEvent::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Self, String> {
        let fields = parse_flat_object(line)?;
        let num = |k: &str| -> Result<f64, String> {
            match fields.iter().find(|(n, _)| n == k) {
                Some((_, JsonVal::Num(x))) => Ok(*x),
                _ => Err(format!("missing numeric field `{k}` in {line}")),
            }
        };
        let uint = |k: &str| -> Result<u64, String> { num(k).map(|x| x as u64) };
        let boolean = |k: &str| -> Result<bool, String> {
            match fields.iter().find(|(n, _)| n == k) {
                Some((_, JsonVal::Bool(b))) => Ok(*b),
                _ => Err(format!("missing boolean field `{k}` in {line}")),
            }
        };
        let text = |k: &str| -> Result<String, String> {
            match fields.iter().find(|(n, _)| n == k) {
                Some((_, JsonVal::Str(v))) => Ok(v.clone()),
                _ => Err(format!("missing string field `{k}` in {line}")),
            }
        };
        let t = num("t")?;
        let ev = text("ev")?;
        let kind = match ev.as_str() {
            "problem_submitted" => EventKind::ProblemSubmitted {
                problem: uint("problem")? as ProblemId,
                name: text("name")?,
            },
            "problem_completed" => EventKind::ProblemCompleted {
                problem: uint("problem")? as ProblemId,
            },
            "unit_created" => EventKind::UnitCreated {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                cost_ops: num("cost_ops")?,
            },
            "unit_issued" => EventKind::UnitIssued {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
                redundant: boolean("redundant")?,
            },
            "unit_completed" => EventKind::UnitCompleted {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
                latency: num("latency")?,
            },
            "unit_combined" => EventKind::UnitCombined {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
            },
            "result_wasted" => EventKind::ResultWasted {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "result_corrupted" => EventKind::ResultCorrupted {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "result_disputed" => EventKind::ResultDisputed {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "lease_expired" => EventKind::LeaseExpired {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                client: uint("client")? as ClientId,
            },
            "unit_reissued" => EventKind::UnitReissued {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
                reason: text("reason")?,
            },
            "client_lost" => EventKind::ClientLost {
                client: uint("client")? as ClientId,
            },
            "machine_joined" => EventKind::MachineJoined {
                client: uint("client")? as ClientId,
            },
            "machine_departed" => EventKind::MachineDeparted {
                client: uint("client")? as ClientId,
            },
            "machine_crashed" => EventKind::MachineCrashed {
                client: uint("client")? as ClientId,
                down_secs: num("down_secs")?,
            },
            "fault_injected" => EventKind::FaultInjected {
                client: uint("client")? as ClientId,
                action: text("action")?,
            },
            "wire_fault" => EventKind::WireFault {
                client: uint("client")? as ClientId,
                action: text("action")?,
            },
            "liveness_sweep" => EventKind::LivenessSweep {
                stale: uint("stale")? as usize,
            },
            "checkpoint_write" => EventKind::CheckpointWrite {
                kind: text("kind")?,
            },
            "replay_issue" => EventKind::ReplayIssue {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
            },
            "replay_result" => EventKind::ReplayResult {
                problem: uint("problem")? as ProblemId,
                unit: uint("unit")?,
            },
            "recovery_done" => EventKind::RecoveryDone {
                replayed_issues: uint("replayed_issues")?,
                replayed_results: uint("replayed_results")?,
                pending_restored: uint("pending_restored")?,
                torn_tail: boolean("torn_tail")?,
            },
            "stage_started" => EventKind::StageStarted {
                problem: uint("problem")? as ProblemId,
                stage: text("stage")?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        };
        Ok(Self { t, kind })
    }
}

// ------------------------------------------------ flat JSON parsing

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Num(f64),
    Str(String),
    Bool(bool),
}

/// Parses one flat (non-nested) JSON object into ordered key/value
/// pairs. Only the subset this module emits is accepted.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let bytes: Vec<char> = line.trim().chars().collect();
    let mut i = 0usize;
    let err = |msg: &str, i: usize| format!("{msg} at char {i}: {line}");
    let skip_ws = |bytes: &[char], i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    fn parse_string(bytes: &[char], i: &mut usize) -> Result<String, String> {
        if bytes.get(*i) != Some(&'"') {
            return Err("expected string".into());
        }
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = bytes.get(*i).copied().ok_or("truncated escape")?;
                    *i += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            if *i + 4 > bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex: String = bytes[*i..*i + 4].iter().collect();
                            *i += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u: {e}"))?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("unsupported escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }
    skip_ws(&bytes, &mut i);
    if bytes.get(i) != Some(&'{') {
        return Err(err("expected '{'", i));
    }
    i += 1;
    let mut fields = Vec::new();
    loop {
        skip_ws(&bytes, &mut i);
        if bytes.get(i) == Some(&'}') {
            i += 1;
            break;
        }
        let key = parse_string(&bytes, &mut i).map_err(|e| err(&e, i))?;
        skip_ws(&bytes, &mut i);
        if bytes.get(i) != Some(&':') {
            return Err(err("expected ':'", i));
        }
        i += 1;
        skip_ws(&bytes, &mut i);
        let val = match bytes.get(i) {
            Some(&'"') => JsonVal::Str(parse_string(&bytes, &mut i).map_err(|e| err(&e, i))?),
            Some(&'t') if bytes[i..].starts_with(&['t', 'r', 'u', 'e']) => {
                i += 4;
                JsonVal::Bool(true)
            }
            Some(&'f') if bytes[i..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
                i += 5;
                JsonVal::Bool(false)
            }
            Some(&'n') if bytes[i..].starts_with(&['n', 'u', 'l', 'l']) => {
                i += 4;
                JsonVal::Num(f64::NAN)
            }
            Some(_) => {
                let start = i;
                while i < bytes.len() && !matches!(bytes[i], ',' | '}') && !bytes[i].is_whitespace()
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                JsonVal::Num(
                    text.parse::<f64>()
                        .map_err(|e| err(&format!("bad number `{text}`: {e}"), start))?,
                )
            }
            None => return Err(err("truncated object", i)),
        };
        fields.push((key, val));
        skip_ws(&bytes, &mut i);
        match bytes.get(i) {
            Some(&',') => i += 1,
            Some(&'}') => {}
            _ => return Err(err("expected ',' or '}'", i)),
        }
    }
    skip_ws(&bytes, &mut i);
    if i != bytes.len() {
        return Err(err("trailing garbage", i));
    }
    Ok(fields)
}

// ----------------------------------------------------------- sinks

/// Where trace events go. Implementations must be cheap: the emitting
/// thread holds the telemetry lock for the duration of `record`.
pub trait TraceSink: Send {
    /// Consumes one event.
    fn record(&mut self, ev: &TraceEvent);
    /// Flushes any buffered output (e.g. at end of run).
    fn flush(&mut self) {}
}

/// Read side of a [`RingSink`]: a bounded in-memory buffer of the most
/// recent events.
#[derive(Clone)]
pub struct RingHandle {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
}

impl RingHandle {
    /// Copies out the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring lock").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Keeps the most recent `capacity` events in memory.
pub struct RingSink {
    buf: Arc<Mutex<VecDeque<TraceEvent>>>,
    capacity: usize,
}

impl RingSink {
    /// A ring of the given capacity plus its read handle.
    pub fn new(capacity: usize) -> (Self, RingHandle) {
        assert!(capacity > 0, "ring capacity must be positive");
        let buf = Arc::new(Mutex::new(VecDeque::with_capacity(capacity.min(1024))));
        (
            Self {
                buf: buf.clone(),
                capacity,
            },
            RingHandle { buf },
        )
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut buf = self.buf.lock().expect("ring lock");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// Writes one JSON object per line to a file, buffered.
pub struct JsonlSink {
    out: BufWriter<std::fs::File>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self {
            out: BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        let _ = self.out.write_all(ev.to_json_line().as_bytes());
        let _ = self.out.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

// ------------------------------------------- span-completeness check

/// Verifies the span-completeness invariant over a whole-run trace:
/// every `unit_issued` lease is eventually resolved — by a completion
/// of the unit (any deliverer; completion cancels sibling redundant
/// leases), a `lease_expired` / `result_corrupted` for that exact
/// lease, the loss of the client, or the completion of the whole
/// problem (which clears its in-flight table) — and no unit completes
/// without ever having been issued (or replayed from a checkpoint).
pub fn verify_spans(events: &[TraceEvent]) -> Result<(), String> {
    let mut open: BTreeSet<(ProblemId, UnitId, ClientId)> = BTreeSet::new();
    let mut ever_issued: BTreeSet<(ProblemId, UnitId)> = BTreeSet::new();
    for ev in events {
        match &ev.kind {
            EventKind::UnitIssued {
                problem,
                unit,
                client,
                ..
            } => {
                open.insert((*problem, *unit, *client));
                ever_issued.insert((*problem, *unit));
            }
            EventKind::ReplayIssue { problem, unit } => {
                ever_issued.insert((*problem, *unit));
            }
            EventKind::UnitCompleted { problem, unit, .. } => {
                if !ever_issued.contains(&(*problem, *unit)) {
                    return Err(format!(
                        "unit {unit} of problem {problem} completed at t={} without ever being issued",
                        ev.t
                    ));
                }
                open.retain(|&(p, u, _)| !(p == *problem && u == *unit));
            }
            EventKind::LeaseExpired {
                problem,
                unit,
                client,
            }
            | EventKind::ResultCorrupted {
                problem,
                unit,
                client,
            }
            | EventKind::ResultDisputed {
                problem,
                unit,
                client,
            } => {
                open.remove(&(*problem, *unit, *client));
            }
            EventKind::ClientLost { client } => {
                open.retain(|&(_, _, c)| c != *client);
            }
            EventKind::ProblemCompleted { problem } => {
                open.retain(|&(p, _, _)| p != *problem);
            }
            _ => {}
        }
    }
    if open.is_empty() {
        Ok(())
    } else {
        Err(format!("unresolved leases at end of trace: {open:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: EventKind) -> TraceEvent {
        TraceEvent { t, kind }
    }

    #[test]
    fn every_event_kind_round_trips_through_json() {
        let events = vec![
            ev(
                0.0,
                EventKind::ProblemSubmitted {
                    problem: 0,
                    name: "dsearch \"x\"\n".into(),
                },
            ),
            ev(
                1.5,
                EventKind::UnitCreated {
                    problem: 0,
                    unit: 1,
                    cost_ops: 1.5e7,
                },
            ),
            ev(
                1.5,
                EventKind::UnitIssued {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    redundant: false,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCompleted {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    latency: 0.5,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCombined {
                    problem: 0,
                    unit: 1,
                },
            ),
            ev(
                2.5,
                EventKind::ResultWasted {
                    problem: 0,
                    unit: 1,
                    client: 3,
                },
            ),
            ev(
                3.0,
                EventKind::ResultCorrupted {
                    problem: 0,
                    unit: 2,
                    client: 1,
                },
            ),
            ev(
                3.5,
                EventKind::ResultDisputed {
                    problem: 0,
                    unit: 2,
                    client: 4,
                },
            ),
            ev(
                4.0,
                EventKind::LeaseExpired {
                    problem: 0,
                    unit: 3,
                    client: 0,
                },
            ),
            ev(
                4.0,
                EventKind::UnitReissued {
                    problem: 0,
                    unit: 3,
                    reason: "lease_expired".into(),
                },
            ),
            ev(5.0, EventKind::ClientLost { client: 4 }),
            ev(0.0, EventKind::MachineJoined { client: 0 }),
            ev(9.0, EventKind::MachineDeparted { client: 5 }),
            ev(
                9.5,
                EventKind::MachineCrashed {
                    client: 1,
                    down_secs: 12.5,
                },
            ),
            ev(
                10.0,
                EventKind::FaultInjected {
                    client: 1,
                    action: "drop".into(),
                },
            ),
            ev(
                10.5,
                EventKind::WireFault {
                    client: 2,
                    action: "corrupt".into(),
                },
            ),
            ev(11.0, EventKind::LivenessSweep { stale: 2 }),
            ev(
                11.5,
                EventKind::CheckpointWrite {
                    kind: "result".into(),
                },
            ),
            ev(
                12.0,
                EventKind::ReplayIssue {
                    problem: 0,
                    unit: 7,
                },
            ),
            ev(
                12.5,
                EventKind::ReplayResult {
                    problem: 0,
                    unit: 7,
                },
            ),
            ev(
                13.0,
                EventKind::RecoveryDone {
                    replayed_issues: 3,
                    replayed_results: 2,
                    pending_restored: 1,
                    torn_tail: true,
                },
            ),
            ev(
                14.0,
                EventKind::StageStarted {
                    problem: 0,
                    stage: "insert:taxon 3".into(),
                },
            ),
            ev(20.0, EventKind::ProblemCompleted { problem: 0 }),
        ];
        for e in events {
            let line = e.to_json_line();
            let back = TraceEvent::from_json_line(&line)
                .unwrap_or_else(|err| panic!("parse failed for {line}: {err}"));
            assert_eq!(back, e, "round trip for {line}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "{}",
            "not json",
            "{\"t\":1.0}",
            "{\"t\":1.0,\"ev\":\"no_such_event\"}",
            "{\"t\":1.0,\"ev\":\"unit_combined\"}",
            "{\"t\":abc,\"ev\":\"client_lost\",\"client\":0}",
        ] {
            assert!(TraceEvent::from_json_line(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn ring_sink_keeps_the_most_recent_events() {
        let (mut sink, handle) = RingSink::new(2);
        for i in 0..4 {
            sink.record(&ev(i as f64, EventKind::ClientLost { client: i }));
        }
        let got = handle.events();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].t, 2.0);
        assert_eq!(got[1].t, 3.0);
    }

    #[test]
    fn span_checker_accepts_resolved_and_rejects_dangling() {
        let ok = vec![
            ev(
                0.0,
                EventKind::UnitIssued {
                    problem: 0,
                    unit: 1,
                    client: 0,
                    redundant: false,
                },
            ),
            ev(
                1.0,
                EventKind::UnitIssued {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    redundant: true,
                },
            ),
            ev(
                2.0,
                EventKind::UnitCompleted {
                    problem: 0,
                    unit: 1,
                    client: 2,
                    latency: 1.0,
                },
            ),
        ];
        verify_spans(&ok).expect("completion resolves sibling redundant lease");

        let dangling = vec![ev(
            0.0,
            EventKind::UnitIssued {
                problem: 0,
                unit: 1,
                client: 0,
                redundant: false,
            },
        )];
        assert!(verify_spans(&dangling).is_err(), "open lease must fail");

        let orphan = vec![ev(
            0.0,
            EventKind::UnitCompleted {
                problem: 0,
                unit: 9,
                client: 0,
                latency: 0.0,
            },
        )];
        assert!(
            verify_spans(&orphan).is_err(),
            "completion without issue must fail"
        );
    }

    #[test]
    fn problem_completion_clears_its_leases() {
        let trace = vec![
            ev(
                0.0,
                EventKind::UnitIssued {
                    problem: 1,
                    unit: 5,
                    client: 0,
                    redundant: false,
                },
            ),
            ev(3.0, EventKind::ProblemCompleted { problem: 1 }),
        ];
        verify_spans(&trace).expect("problem completion resolves leases");
    }
}
