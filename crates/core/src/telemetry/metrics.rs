//! The metrics half of the telemetry layer: counters, gauges and
//! fixed-bucket histograms, snapshotted into plain data and serialized
//! to JSON with no external dependencies.
//!
//! Everything is keyed by `&str` names in `BTreeMap`s, so snapshots and
//! their JSON renderings are deterministic: the same run produces the
//! same bytes. Histograms use *fixed* bucket bounds supplied at first
//! observation — two histograms with identical bounds merge
//! associatively (bucket-wise addition), which is what lets per-shard
//! registries fold into one (and what the satellite test asserts).

use crate::codec::{ByteReader, ByteWriter, WireError};
use std::collections::BTreeMap;

/// Two histograms with different bucket bounds were asked to merge.
/// Merging over different buckets has no meaning; callers folding
/// donor-shipped registries route this to a `telemetry.merge_errors`
/// counter instead of dying.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeError {
    /// The bounds of the receiving histogram.
    pub ours: Vec<f64>,
    /// The bounds of the incoming histogram.
    pub theirs: Vec<f64>,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram merge requires identical bounds (ours: {:?}, theirs: {:?})",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for MergeError {}

/// Bucket bounds for unit latencies, in (scaled/virtual) seconds.
pub const LATENCY_BOUNDS: &[f64] = &[
    0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
];

/// Bucket bounds for work-unit cost in abstract ops.
pub const OPS_BOUNDS: &[f64] = &[1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// Bucket bounds for small cardinalities (chunk sizes, queue depths).
pub const SIZE_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Renders an `f64` as a JSON value (non-finite values become `null`,
/// since JSON has no representation for them).
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A fixed-bucket histogram: `counts[i]` holds observations `x <=
/// bounds[i]` (first matching bucket), `counts[bounds.len()]` the
/// overflow. Merging two histograms with the same bounds is bucket-wise
/// addition, hence associative and commutative.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A fresh histogram over `bounds` (must be sorted, finite, and
    /// non-empty).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += x;
        self.count += 1;
    }

    /// Folds `other` into `self` (bucket-wise addition). Fails without
    /// touching `self` when the bucket bounds differ — merging over
    /// different buckets has no meaning, and a malformed donor-shipped
    /// registry must not kill the server.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.bounds != other.bounds {
            return Err(MergeError {
                ours: self.bounds.clone(),
                theirs: other.bounds.clone(),
            });
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) estimated by linear interpolation
    /// inside the fixed buckets, the standard streaming-histogram
    /// estimate: the bucket holding the q-th observation is found by
    /// walking the cumulative counts, and the position inside it is
    /// interpolated between its bounds. The underflow bucket
    /// interpolates from 0, the overflow bucket reports the last bound
    /// (the histogram knows nothing beyond it). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile wants q in [0, 1]");
        if self.count == 0 {
            return None;
        }
        let rank = q * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let above = below + c;
            if rank <= above as f64 || i == self.counts.len() - 1 {
                if i == self.bounds.len() {
                    // Overflow bucket: unbounded above, clamp to the
                    // last finite bound.
                    return Some(self.bounds[self.bounds.len() - 1]);
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let frac = ((rank - below as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            below = above;
        }
        // All counts zero is impossible with count > 0.
        unreachable!("non-empty histogram must locate a quantile bucket")
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Reconstructs a histogram from wire parts (shipped snapshots).
    fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    ) -> Result<Self, WireError> {
        if bounds.is_empty()
            || counts.len() != bounds.len() + 1
            || !bounds.windows(2).all(|w| w[0] < w[1])
            || bounds.iter().any(|b| !b.is_finite())
        {
            return Err(WireError::new("malformed histogram in metrics snapshot"));
        }
        if counts.iter().sum::<u64>() != count {
            return Err(WireError::new(
                "histogram bucket counts disagree with count",
            ));
        }
        Ok(Self {
            bounds,
            counts,
            sum,
            count,
        })
    }

    fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|&b| fmt_f64(b)).collect();
        let counts: Vec<String> = self.counts.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
            bounds.join(","),
            counts.join(","),
            fmt_f64(self.sum),
            self.count
        )
    }
}

/// The live registry: owned by the telemetry handle, mutated through
/// it, and read via [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `v` to counter `name` (created at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `x` into histogram `name`, creating it over `bounds` on
    /// first use (later calls must pass the same bounds).
    pub fn observe(&mut self, name: &str, bounds: &[f64], x: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(x);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Folds a donor-shipped snapshot into this registry under
    /// `prefix` (typically `donor.c<id>.`): counters add, gauges
    /// last-write-win, histograms merge bucket-wise. Shipped snapshots
    /// are *cumulative*, so counters and histograms **replace** the
    /// prefixed entry rather than adding — re-shipping the same
    /// snapshot twice must be idempotent. Returns the number of
    /// histogram merges rejected for mismatched bounds (routed by the
    /// caller to `telemetry.merge_errors`).
    pub fn merge_prefixed(&mut self, prefix: &str, snap: &MetricsSnapshot) -> u64 {
        for (k, v) in &snap.counters {
            self.counters.insert(format!("{prefix}{k}"), *v);
        }
        for (k, v) in &snap.gauges {
            self.gauges.insert(format!("{prefix}{k}"), *v);
        }
        let mut errors = 0;
        for (k, h) in &snap.histograms {
            let name = format!("{prefix}{k}");
            match self.histograms.get_mut(&name) {
                // Same bounds: replace (cumulative snapshot supersedes
                // the previous report). Different bounds: the donor is
                // confused — keep ours, count the error.
                Some(existing) => {
                    if existing.bounds == h.bounds {
                        *existing = h.clone();
                    } else {
                        errors += 1;
                    }
                }
                None => {
                    self.histograms.insert(name, h.clone());
                }
            }
        }
        errors
    }
}

/// A point-in-time copy of the registry, detached from any locking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges every histogram whose name ends in `suffix` into one
    /// cluster-wide histogram via the associative [`Histogram::merge`],
    /// returning it plus the number of merges rejected for mismatched
    /// bounds. This is how per-donor shipped histograms
    /// (`donor.c3.client.unit_secs`, …) fold back into one pool-wide
    /// distribution for streaming quantiles.
    pub fn aggregate_histograms(&self, suffix: &str) -> (Option<Histogram>, u64) {
        let mut total: Option<Histogram> = None;
        let mut errors = 0;
        for (name, h) in &self.histograms {
            if !name.ends_with(suffix) {
                continue;
            }
            match &mut total {
                None => total = Some(h.clone()),
                Some(t) => {
                    if t.merge(h).is_err() {
                        errors += 1;
                    }
                }
            }
        }
        (total, errors)
    }

    /// Compact binary encoding for the `MetricsReport` wire frame.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u32(self.counters.len() as u32);
        for (k, v) in &self.counters {
            w.str(k);
            w.u64(*v);
        }
        w.u32(self.gauges.len() as u32);
        for (k, v) in &self.gauges {
            w.str(k);
            w.f64(*v);
        }
        w.u32(self.histograms.len() as u32);
        for (k, h) in &self.histograms {
            w.str(k);
            w.u32(h.bounds.len() as u32);
            for &b in &h.bounds {
                w.f64(b);
            }
            for &c in &h.counts {
                w.u64(c);
            }
            w.f64(h.sum);
            w.u64(h.count);
        }
        w.into_bytes()
    }

    /// Decodes a [`MetricsSnapshot::to_wire_bytes`] buffer, validating
    /// histogram structure (bounds sorted, counts consistent).
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let mut counters = BTreeMap::new();
        for _ in 0..r.count(9)? {
            let k = r.str()?;
            counters.insert(k, r.u64()?);
        }
        let mut gauges = BTreeMap::new();
        for _ in 0..r.count(9)? {
            let k = r.str()?;
            gauges.insert(k, r.f64()?);
        }
        let mut histograms = BTreeMap::new();
        for _ in 0..r.count(1)? {
            let k = r.str()?;
            let n_bounds = r.count(8)?;
            let mut bounds = Vec::with_capacity(n_bounds);
            for _ in 0..n_bounds {
                bounds.push(r.f64()?);
            }
            let mut counts = Vec::with_capacity(n_bounds + 1);
            for _ in 0..n_bounds + 1 {
                counts.push(r.u64()?);
            }
            let sum = r.f64()?;
            let count = r.u64()?;
            histograms.insert(k, Histogram::from_parts(bounds, counts, sum, count)?);
        }
        r.finish()?;
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }

    /// Deterministic JSON rendering (BTreeMap order = sorted by name).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", super::trace::json_string(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{}:{}", super::trace::json_string(k), fmt_f64(*v)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| format!("{}:{}", super::trace::json_string(k), h.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 55.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let bounds = [1.0, 2.0, 4.0];
        let mk = |xs: &[f64]| {
            let mut h = Histogram::new(&bounds);
            for &x in xs {
                h.observe(x);
            }
            h
        };
        let (a, b, c) = (mk(&[0.5, 3.0]), mk(&[1.5, 9.0]), mk(&[2.5]));
        let mut ab_c = a.clone();
        ab_c.merge(&b).unwrap();
        ab_c.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut a_bc = a.clone();
        a_bc.merge(&bc).unwrap();
        assert_eq!(ab_c, a_bc, "associativity");
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        assert_eq!(ab, ba, "commutativity");
    }

    #[test]
    fn histogram_merge_rejects_mismatched_bounds_without_mutating() {
        let mut a = Histogram::new(&[1.0]);
        a.observe(0.5);
        let before = a.clone();
        let mut b = Histogram::new(&[2.0]);
        b.observe(1.5);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err.ours, vec![1.0]);
        assert_eq!(err.theirs, vec![2.0]);
        assert!(err.to_string().contains("identical bounds"));
        assert_eq!(a, before, "failed merge must leave the target intact");
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 4 observations in (1, 2], so p50 lands mid-bucket.
        for x in [1.2, 1.4, 1.6, 1.8] {
            h.observe(x);
        }
        assert_eq!(h.quantile(0.0), Some(1.0), "q=0 is the bucket floor");
        assert_eq!(h.quantile(1.0), Some(2.0), "q=1 is the bucket ceiling");
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 1.5).abs() < 1e-12, "p50 {p50}");
        // Uniform spread across buckets: quantiles walk the cumulative.
        let mut u = Histogram::new(&[1.0, 2.0, 4.0]);
        u.observe(0.5); // bucket (0, 1]
        u.observe(1.5); // bucket (1, 2]
        u.observe(3.0); // bucket (2, 4]
        u.observe(9.0); // overflow
        assert_eq!(u.quantile(0.25), Some(1.0));
        assert!((u.quantile(0.5).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(
            u.quantile(0.99),
            Some(4.0),
            "overflow clamps to the last bound"
        );
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None, "empty is None");
    }

    #[test]
    #[should_panic(expected = "q in [0, 1]")]
    fn quantile_rejects_out_of_range_q() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.quantile(1.5);
    }

    #[test]
    fn snapshot_wire_round_trip_is_lossless() {
        let mut r = MetricsRegistry::default();
        r.counter_add("cache.hits", 7);
        r.counter_add("net.bytes_out", 123_456_789);
        r.gauge_set("ops_per_sec", 1.5e7);
        r.observe("unit_secs", LATENCY_BOUNDS, 0.3);
        r.observe("unit_secs", LATENCY_BOUNDS, 42.0);
        let snap = r.snapshot();
        let bytes = snap.to_wire_bytes();
        let back = MetricsSnapshot::from_wire_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // Corrupting the tail must not decode into a valid snapshot.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(MetricsSnapshot::from_wire_bytes(&bad).is_err());
        assert!(MetricsSnapshot::from_wire_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn merge_prefixed_is_idempotent_and_counts_bound_errors() {
        let mut donor = MetricsRegistry::default();
        donor.counter_add("cache.hits", 3);
        donor.gauge_set("queue_depth", 2.0);
        donor.observe("unit_secs", &[1.0, 2.0], 0.5);
        let snap = donor.snapshot();

        let mut cluster = MetricsRegistry::default();
        assert_eq!(cluster.merge_prefixed("donor.c3.", &snap), 0);
        assert_eq!(cluster.merge_prefixed("donor.c3.", &snap), 0);
        let merged = cluster.snapshot();
        assert_eq!(
            merged.counter("donor.c3.cache.hits"),
            3,
            "re-shipping the same cumulative snapshot must not double-count"
        );
        assert_eq!(merged.gauge("donor.c3.queue_depth"), Some(2.0));
        assert_eq!(merged.histogram("donor.c3.unit_secs").unwrap().count(), 1);

        // A donor that re-ships under different bounds is rejected per
        // histogram, counted, and the server-side copy survives.
        let mut confused = MetricsRegistry::default();
        confused.observe("unit_secs", &[9.0], 0.5);
        assert_eq!(cluster.merge_prefixed("donor.c3.", &confused.snapshot()), 1);
        assert_eq!(
            cluster
                .snapshot()
                .histogram("donor.c3.unit_secs")
                .unwrap()
                .bounds(),
            &[1.0, 2.0]
        );
    }

    #[test]
    fn aggregate_histograms_folds_per_donor_entries() {
        let mut r = MetricsRegistry::default();
        r.observe("donor.c0.unit_secs", &[1.0, 2.0], 0.5);
        r.observe("donor.c1.unit_secs", &[1.0, 2.0], 1.5);
        r.observe("donor.c2.other", &[1.0, 2.0], 1.5);
        let (total, errors) = r.snapshot().aggregate_histograms(".unit_secs");
        assert_eq!(errors, 0);
        assert_eq!(total.unwrap().count(), 2);
        // Mismatched bounds on one donor: skipped and counted.
        r.observe("donor.c3.unit_secs", &[5.0], 0.1);
        let (total, errors) = r.snapshot().aggregate_histograms(".unit_secs");
        assert_eq!(errors, 1);
        assert_eq!(total.unwrap().count(), 2);
    }

    #[test]
    fn registry_snapshot_round_trips_to_stable_json() {
        let mut r = MetricsRegistry::default();
        r.counter_add("b.count", 2);
        r.counter_add("a.count", 1);
        r.gauge_set("speed", 1.5);
        r.observe("lat", &[1.0], 0.5);
        let j1 = r.snapshot().to_json();
        let j2 = r.snapshot().to_json();
        assert_eq!(j1, j2, "deterministic rendering");
        // Sorted key order, regardless of insertion order.
        assert!(j1.find("\"a.count\"").unwrap() < j1.find("\"b.count\"").unwrap());
        assert!(j1.contains("\"sum\":0.5"));
    }
}
