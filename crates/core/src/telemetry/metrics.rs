//! The metrics half of the telemetry layer: counters, gauges and
//! fixed-bucket histograms, snapshotted into plain data and serialized
//! to JSON with no external dependencies.
//!
//! Everything is keyed by `&str` names in `BTreeMap`s, so snapshots and
//! their JSON renderings are deterministic: the same run produces the
//! same bytes. Histograms use *fixed* bucket bounds supplied at first
//! observation — two histograms with identical bounds merge
//! associatively (bucket-wise addition), which is what lets per-shard
//! registries fold into one (and what the satellite test asserts).

use std::collections::BTreeMap;

/// Bucket bounds for unit latencies, in (scaled/virtual) seconds.
pub const LATENCY_BOUNDS: &[f64] = &[
    0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
];

/// Bucket bounds for work-unit cost in abstract ops.
pub const OPS_BOUNDS: &[f64] = &[1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// Bucket bounds for small cardinalities (chunk sizes, queue depths).
pub const SIZE_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// Renders an `f64` as a JSON value (non-finite values become `null`,
/// since JSON has no representation for them).
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A fixed-bucket histogram: `counts[i]` holds observations `x <=
/// bounds[i]` (first matching bucket), `counts[bounds.len()]` the
/// overflow. Merging two histograms with the same bounds is bucket-wise
/// addition, hence associative and commutative.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// A fresh histogram over `bounds` (must be sorted, finite, and
    /// non-empty).
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += x;
        self.count += 1;
    }

    /// Folds `other` into `self` (bucket-wise addition).
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging histograms over
    /// different buckets has no meaning.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge requires identical bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|&b| fmt_f64(b)).collect();
        let counts: Vec<String> = self.counts.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"bounds\":[{}],\"counts\":[{}],\"sum\":{},\"count\":{}}}",
            bounds.join(","),
            counts.join(","),
            fmt_f64(self.sum),
            self.count
        )
    }
}

/// The live registry: owned by the telemetry handle, mutated through
/// it, and read via [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `v` to counter `name` (created at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records `x` into histogram `name`, creating it over `bounds` on
    /// first use (later calls must pass the same bounds).
    pub fn observe(&mut self, name: &str, bounds: &[f64], x: f64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(x);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// A point-in-time copy of the registry, detached from any locking.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bucket histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram by name, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Deterministic JSON rendering (BTreeMap order = sorted by name).
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", super::trace::json_string(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("{}:{}", super::trace::json_string(k), fmt_f64(*v)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| format!("{}:{}", super::trace::json_string(k), h.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.counts(), &[1, 1, 1]);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 55.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let bounds = [1.0, 2.0, 4.0];
        let mk = |xs: &[f64]| {
            let mut h = Histogram::new(&bounds);
            for &x in xs {
                h.observe(x);
            }
            h
        };
        let (a, b, c) = (mk(&[0.5, 3.0]), mk(&[1.5, 9.0]), mk(&[2.5]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associativity");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "commutativity");
    }

    #[test]
    #[should_panic(expected = "identical bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn registry_snapshot_round_trips_to_stable_json() {
        let mut r = MetricsRegistry::default();
        r.counter_add("b.count", 2);
        r.counter_add("a.count", 1);
        r.gauge_set("speed", 1.5);
        r.observe("lat", &[1.0], 0.5);
        let j1 = r.snapshot().to_json();
        let j2 = r.snapshot().to_json();
        assert_eq!(j1, j2, "deterministic rendering");
        // Sorted key order, regardless of insertion order.
        assert!(j1.find("\"a.count\"").unwrap() < j1.find("\"b.count\"").unwrap());
        assert!(j1.contains("\"sum\":0.5"));
    }
}
