//! Unified telemetry: deterministic run tracing plus a metrics
//! registry, threaded through the scheduler, the server, and all three
//! execution backends.
//!
//! The paper's evaluation is entirely *observational* — donor
//! utilization over the DPRml stages (Figure 1) and effective speedup
//! of dynamically sized DSEARCH chunks (Figure 2) — so this module is
//! the substrate those artifacts are rebuilt from: every work unit gets
//! a lifecycle span (`created → issued(machine) → [reissued |
//! lease_expired | corrupted]* → completed → combined`), and the
//! server, backends and applications record counters, gauges and
//! histograms into one registry.
//!
//! Design rules:
//!
//! * **Disabled is free-ish.** A [`Telemetry`] handle is a clonable
//!   `Option<Arc<Mutex<…>>>`; the default handle is disabled and every
//!   emit/record call is a branch on `None` — no lock, no allocation,
//!   no behaviour change for code that never enables it.
//! * **Deterministic.** Timestamps come from the backend's own clock
//!   (virtual seconds on the simulator), sinks write events in emission
//!   order, and all registry maps are `BTreeMap`s — so a simulator run
//!   with a fixed `FaultPlan` and seed produces a byte-identical JSONL
//!   trace and metrics JSON.
//! * **One canonical event per fact.** E.g. every corrupted-result
//!   route (sim/thread delivery faults, TCP frame-CRC and decode
//!   failures) funnels through `Server::result_corrupted`, which emits
//!   the single `result_corrupted` event the sim/TCP parity checks
//!   count.

mod metrics;
mod trace;

pub use metrics::{
    Histogram, MergeError, MetricsRegistry, MetricsSnapshot, LATENCY_BOUNDS, OPS_BOUNDS,
    SIZE_BOUNDS,
};
pub use trace::{
    phase_breakdowns, verify_spans, EventKind, JsonlSink, RingHandle, RingSink, TraceEvent,
    TraceSink, UnitPhases,
};

pub(crate) use metrics::fmt_f64;
pub(crate) use trace::json_string;

use std::path::Path;
use std::sync::{Arc, Mutex};

struct Inner {
    sinks: Vec<Box<dyn TraceSink>>,
    metrics: MetricsRegistry,
    /// The emitting component's current backend time, set by the server
    /// at each entry point so clock-less code (data managers) can emit
    /// timestamped events.
    now: f64,
}

/// A clonable handle to one telemetry domain (one run). The default
/// handle is disabled: all operations are no-ops until
/// [`Telemetry::enabled`] creates a live one.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle (same as `Default`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live handle with no sinks yet (metrics recording already
    /// works; attach sinks for tracing).
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Mutex::new(Inner {
                sinks: Vec::new(),
                metrics: MetricsRegistry::default(),
                now: 0.0,
            }))),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches any sink. No-op on a disabled handle.
    pub fn attach(&self, sink: Box<dyn TraceSink>) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("telemetry lock").sinks.push(sink);
        }
    }

    /// Attaches a ring buffer of the most recent `capacity` events and
    /// returns its read handle.
    pub fn attach_ring(&self, capacity: usize) -> RingHandle {
        let (sink, handle) = RingSink::new(capacity);
        self.attach(Box::new(sink));
        handle
    }

    /// Attaches a JSONL file sink writing to `path` (truncated).
    pub fn attach_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let sink = JsonlSink::create(path)?;
        self.attach(Box::new(sink));
        Ok(())
    }

    /// Updates the handle's notion of backend time; subsequent
    /// [`Telemetry::emit`] calls are stamped with it.
    pub fn set_now(&self, t: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("telemetry lock").now = t;
        }
    }

    /// Emits an event stamped with the last [`Telemetry::set_now`] time.
    pub fn emit(&self, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("telemetry lock");
            let ev = TraceEvent { t: inner.now, kind };
            for sink in &mut inner.sinks {
                sink.record(&ev);
            }
        }
    }

    /// Emits an event stamped with an explicit time (for components
    /// that own a clock, like the backends).
    pub fn emit_at(&self, t: f64, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.lock().expect("telemetry lock");
            inner.now = t;
            let ev = TraceEvent { t, kind };
            for sink in &mut inner.sinks {
                sink.record(&ev);
            }
        }
    }

    /// Adds `v` to counter `name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry lock")
                .metrics
                .counter_add(name, v);
        }
    }

    /// Sets gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry lock")
                .metrics
                .gauge_set(name, v);
        }
    }

    /// Records `x` into histogram `name` (created over `bounds` on
    /// first use).
    pub fn observe(&self, name: &str, bounds: &[f64], x: f64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("telemetry lock")
                .metrics
                .observe(name, bounds, x);
        }
    }

    /// Merges a donor-shipped snapshot into this registry, every name
    /// prefixed (e.g. `donor.c3.`), and bumps the bookkeeping counters:
    /// `telemetry.reports_received` always, `telemetry.merge_errors` by
    /// the number of histograms whose bounds did not line up (those are
    /// skipped, everything else still merges). Returns the error count.
    pub fn merge_snapshot_prefixed(&self, prefix: &str, snap: &MetricsSnapshot) -> u64 {
        match &self.inner {
            Some(inner) => {
                let metrics = &mut inner.lock().expect("telemetry lock").metrics;
                let errors = metrics.merge_prefixed(prefix, snap);
                metrics.counter_add("telemetry.reports_received", 1);
                if errors > 0 {
                    metrics.counter_add("telemetry.merge_errors", errors);
                }
                errors
            }
            None => 0,
        }
    }

    /// A plain-data copy of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.lock().expect("telemetry lock").metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Flushes every sink (call at end of run before reading files).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &mut inner.lock().expect("telemetry lock").sinks {
                sink.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        t.set_now(5.0);
        t.emit(EventKind::ClientLost { client: 0 });
        t.counter_add("x", 1);
        assert!(!t.is_enabled());
        assert_eq!(t.metrics_snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clones_share_one_domain() {
        let t = Telemetry::enabled();
        let ring = t.attach_ring(16);
        let c = t.clone();
        c.set_now(2.0);
        c.emit(EventKind::ClientLost { client: 3 });
        t.counter_add("n", 2);
        c.counter_add("n", 1);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].t, 2.0);
        assert_eq!(t.metrics_snapshot().counter("n"), 3);
    }

    #[test]
    fn emit_at_updates_the_shared_clock() {
        let t = Telemetry::enabled();
        let ring = t.attach_ring(16);
        t.emit_at(7.5, EventKind::ClientLost { client: 0 });
        t.emit(EventKind::ClientLost { client: 1 });
        let events = ring.events();
        assert_eq!(events[0].t, 7.5);
        assert_eq!(events[1].t, 7.5, "emit() inherits the last clock");
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!(
            "biodist-telemetry-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let t = Telemetry::enabled();
        t.attach_jsonl(&path).unwrap();
        t.emit_at(1.0, EventKind::MachineJoined { client: 0 });
        t.emit_at(
            2.0,
            EventKind::UnitIssued {
                problem: 0,
                unit: 4,
                client: 0,
                redundant: false,
            },
        );
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<TraceEvent> = text
            .lines()
            .map(|l| TraceEvent::from_json_line(l).unwrap())
            .collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].t, 2.0);
        let _ = std::fs::remove_file(&path);
    }
}
