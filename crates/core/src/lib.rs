//! # biodist-core
//!
//! The paper's primary contribution: a programmable, heterogeneous,
//! cycle-scavenging distributed computation framework (Page, Keane &
//! Naughton, IPDPS 2005, §2; scheduling from ref \[12\]).
//!
//! A user packages a computation as a [`Problem`]: a [`DataManager`]
//! (server side — partitions the problem into [`WorkUnit`]s and folds
//! [`TaskResult`]s back together, *including staged computations* whose
//! later units depend on earlier results) plus an [`Algorithm`] (client
//! side — the per-unit computation). The [`server::Server`] runs any
//! number of problems simultaneously and hands units to donor machines
//! using the adaptive scheduler in [`sched`]: per-client throughput
//! EWMAs, dynamically sized units, lease-timeout reissue for donors
//! that vanish, and redundant end-game dispatch for stragglers.
//!
//! Two interchangeable backends execute problems:
//!
//! * [`thread_backend`] — real OS threads over a shared server; used
//!   to validate that distributed results equal the sequential
//!   reference.
//! * [`sim_backend`] — drives the same server against
//!   `biodist-gridsim`'s virtual machines, network and clock; used by
//!   every experiment harness (the paper's 200-PC campus replaced by a
//!   deterministic simulator, per DESIGN.md).
//!
//! * [`net`] — donor clients connect to the server over real TCP
//!   sockets using a CRC-guarded framed wire protocol ([`net::wire`]),
//!   with heartbeats, reconnect, a fault proxy for transport chaos, and
//!   an append-only checkpoint log ([`net::checkpoint`]) that lets a
//!   killed server restart and resume without recombining any unit.
//!   Problems opt in by registering a [`codec::WireCodec`].
//!
//! Fault tolerance is testable by construction: [`fault`] expresses
//! seeded, replayable fault schedules ([`FaultPlan`]) interpreted by
//! both backends, and [`audit`] wraps any problem with an invariant
//! checker ([`audited`]) the chaos suite verifies after every run.

pub mod audit;
pub mod builtin;
pub mod codec;
pub mod fault;
pub mod health;
pub mod net;
pub mod problem;
pub mod quorum;
pub mod sched;
pub mod server;
pub mod sim_backend;
pub mod telemetry;
pub mod thread_backend;

pub use audit::{audited, AuditHandle};
pub use codec::{ByteReader, ByteWriter, ChunkNeed, WireCodec, WireError};
pub use fault::{
    flip_result_bytes, ChaosOptions, DeliveryAction, FaultEvent, FaultInjector, FaultKind,
    FaultPlan, NoFaults, PlanInterpreter,
};
pub use health::{HealthConfig, HealthEngine, HealthTransition, RATIO_BOUNDS};
pub use net::{
    chunk_digest, raise_nofile_limit, recover, recover_traced, run_tcp, run_tcp_faulty,
    run_tcp_replicated, run_tcp_with, Backoff, CacheStats, CheckpointWriter, ChunkCache,
    ChunkStore, Directory, FaultProxy, NetClientOptions, NetServer, NetServerOptions,
    RecoveryReport, ReplicaServer, ShardQueues, REPLICA_CLIENT_ID,
};
pub use problem::{Algorithm, DataManager, Payload, Problem, TaskResult, UnitId, WorkUnit};
pub use quorum::{QuorumTally, VoteOutcome};
pub use sched::{AffinitySnapshot, ClientId, ReputationSnapshot, SchedSnapshot, SchedulerConfig};
pub use server::{
    Assignment, DonorStatus, ProblemId, ProblemStatus, RunJournal, Server, StatusSnapshot,
};
pub use sim_backend::{RunReport, SimConfig, SimRunner};
pub use telemetry::{
    phase_breakdowns, verify_spans, EventKind, Histogram, JsonlSink, MetricsSnapshot, RingHandle,
    Telemetry, TraceEvent, TraceSink, UnitPhases,
};
pub use thread_backend::{run_threaded, run_threaded_faulty};
