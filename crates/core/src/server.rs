//! The server: multi-problem unit dispatch with fault tolerance.
//!
//! Backend-independent — both the threaded and the simulated backend
//! drive the same `Server` with (virtual or wall-clock) timestamps, so
//! every scheduling behaviour exercised by the experiments is also the
//! behaviour the correctness tests see.

use crate::codec::{ByteReader, ByteWriter, ChunkNeed, WireCodec, WireError};
use crate::health::{HealthConfig, HealthEngine, HealthTransition};
use crate::problem::{Algorithm, Payload, Problem, TaskResult, UnitId, WorkUnit};
use crate::quorum::{QuorumTally, VoteOutcome};
use crate::sched::{
    AffinitySnapshot, ClientId, ReputationSnapshot, SchedSnapshot, Scheduler, SchedulerConfig,
};
use crate::telemetry::{EventKind, Telemetry, LATENCY_BOUNDS, OPS_BOUNDS};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// Identifies a submitted problem.
pub type ProblemId = usize;

/// Observer of the durable events a crash-recoverable run must replay:
/// which units the data managers issued (and with what granularity
/// hint), and which results were folded in. The TCP backend installs a
/// [`crate::net::CheckpointWriter`] here; the in-process backends leave
/// it unset and pay nothing.
///
/// Events are reported inside the server's own critical section, in
/// exactly the order the data managers observed them — replaying the
/// journal against fresh data managers reproduces their state.
pub trait RunJournal: Send {
    /// A fresh unit was pulled from `problem`'s data manager with
    /// granularity hint `hint_ops` (reissues and redundant dispatches
    /// of an already-issued unit are not reported).
    fn unit_issued(&mut self, problem: ProblemId, unit: &WorkUnit, hint_ops: f64);
    /// An accepted (first-copy, checksum-clean) result is about to be
    /// folded; `encoded` is its codec wire form.
    fn result_folded(&mut self, problem: ProblemId, unit: UnitId, encoded: &[u8]);
    /// A non-final quorum vote was recorded for `unit`: `encoded` is the
    /// candidate's codec wire form and `needed` the byte-identical votes
    /// required to agree. Default no-op — backends without quorum
    /// checkpointing pay nothing. Replayed votes must never complete a
    /// quorum on their own (see [`crate::QuorumTally::restore_vote`]):
    /// a fold, had it happened, would have journaled a `Result` record.
    fn vote_recorded(
        &mut self,
        problem: ProblemId,
        unit: UnitId,
        needed: u32,
        client: ClientId,
        encoded: &[u8],
    ) {
        let _ = (problem, unit, needed, client, encoded);
    }
}

/// The server's answer to a work request.
pub enum Assignment {
    /// Compute this unit with this algorithm and report back.
    Unit {
        /// Problem the unit belongs to.
        problem: ProblemId,
        /// The unit (shared so it can be redundantly dispatched).
        unit: Arc<WorkUnit>,
        /// The client-side computation.
        algorithm: Arc<dyn Algorithm>,
    },
    /// No unit available right now (stage barrier); ask again later.
    Wait,
    /// Every problem is complete; the client may shut down.
    Finished,
}

struct Lease {
    client: ClientId,
    assigned_at: f64,
    deadline: f64,
}

struct InFlight {
    unit: Arc<WorkUnit>,
    leases: Vec<Lease>,
}

struct ProblemState {
    name: String,
    dm: Box<dyn crate::problem::DataManager>,
    algorithm: Arc<dyn Algorithm>,
    setup_bytes: u64,
    codec: Option<Arc<dyn WireCodec>>,
    in_flight: HashMap<UnitId, InFlight>,
    reissue: VecDeque<Arc<WorkUnit>>,
    // Lookahead pool: units already pulled (and journaled) from the
    // data manager but not yet leased, kept so affinity-aware selection
    // has more than one candidate to match against a donor's cached
    // chunks. Capped at `SchedulerConfig::affinity_lookahead`; with the
    // default of 1 the pool is a pass-through and dispatch order is
    // exactly the pre-affinity order.
    pool: VecDeque<Arc<WorkUnit>>,
    // Earliest lease deadline across `in_flight`, so `check_timeouts`
    // can skip the full scan until the clock actually reaches it. Lease
    // removals (results, churn, corruption) leave it conservatively
    // early — the next scan past it finds nothing and recomputes.
    next_deadline: f64,
    // Times each unit's lease has expired; drives exponential lease
    // backoff so a donor slower than the scheduler's estimate cannot
    // livelock a unit (reissue before its own result arrives, forever).
    reissue_counts: HashMap<UnitId, u32>,
    // In-flight quorum votes under K-way redundant issuance: a tally
    // exists for every unit whose result must win a byte-identical vote
    // before it may reach the combine path. Entries are created when a
    // unit first reaches an untrusted donor and removed when the vote
    // resolves (or the problem completes).
    votes: HashMap<UnitId, QuorumTally>,
    done: bool,
    output: Option<Payload>,
    completion_time: Option<f64>,
    stats: ProblemStats,
}

/// Per-problem dispatch statistics, reported by the experiment harnesses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProblemStats {
    /// Units whose result was folded into the data manager.
    pub completed_units: u64,
    /// Total unit assignments handed out (≥ completed, the overhead
    /// being redundant dispatches and reissues).
    pub assignments: u64,
    /// Assignments that were redundant end-game copies.
    pub redundant_dispatches: u64,
    /// Leases that expired and were queued for reissue.
    pub reissued_units: u64,
    /// Results discarded because another copy finished first.
    pub wasted_results: u64,
    /// Results that arrived corrupted (failed the transport checksum)
    /// and whose unit was cancelled and queued for reissue.
    pub corrupted_results: u64,
    /// Candidate results that lost a quorum vote (their unit reached a
    /// byte-identical quorum they disagreed with).
    pub disputed_results: u64,
}

/// One donor's row in a [`StatusSnapshot`]: adaptive, reputation and
/// health state plus its live lease count.
#[derive(Debug, Clone, PartialEq)]
pub struct DonorStatus {
    /// Donor id.
    pub client: ClientId,
    /// Estimated throughput, ops/second.
    pub ops_per_sec: f64,
    /// Units this donor has completed.
    pub units_completed: u64,
    /// Leases the donor currently holds across all problems.
    pub leases: u32,
    /// Whether quorum reputation has graduated it to single-issue.
    pub trusted: bool,
    /// Quorum agreements since the last dispute.
    pub agreements: u64,
    /// Lifetime quorum disputes.
    pub disputes: u64,
    /// Whether the health detector currently flags it as a straggler.
    pub flagged: bool,
    /// Current fast/baseline health ratio (0 when unknown or the
    /// detector is off).
    pub health_ratio: f64,
}

/// One problem's row in a [`StatusSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemStatus {
    /// Problem id.
    pub problem: ProblemId,
    /// Human-readable name.
    pub name: String,
    /// Whether the problem has completed.
    pub done: bool,
    /// Results folded so far.
    pub completed_units: u64,
    /// Assignments handed out so far.
    pub assignments: u64,
    /// Units currently leased out.
    pub in_flight: u32,
    /// Units waiting in the reissue queue.
    pub reissue_queue: u32,
}

/// A deterministic point-in-time cluster snapshot: every known donor
/// (sorted by id), every problem (in submission order) and the server's
/// counter registry (sorted by name). Rendered by the `biodist_top`
/// bench bin and shipped over TCP as a `StatusReport` frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatusSnapshot {
    /// Backend time the snapshot was taken.
    pub now: f64,
    /// Donor rows, sorted by client id.
    pub donors: Vec<DonorStatus>,
    /// Problem rows, in submission order.
    pub problems: Vec<ProblemStatus>,
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl StatusSnapshot {
    /// Serializes the snapshot for the wire.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.f64(self.now);
        w.u32(self.donors.len() as u32);
        for d in &self.donors {
            w.u64(d.client as u64);
            w.f64(d.ops_per_sec);
            w.u64(d.units_completed);
            w.u32(d.leases);
            w.u8(d.trusted as u8);
            w.u64(d.agreements);
            w.u64(d.disputes);
            w.u8(d.flagged as u8);
            w.f64(d.health_ratio);
        }
        w.u32(self.problems.len() as u32);
        for p in &self.problems {
            w.u64(p.problem as u64);
            w.str(&p.name);
            w.u8(p.done as u8);
            w.u64(p.completed_units);
            w.u64(p.assignments);
            w.u32(p.in_flight);
            w.u32(p.reissue_queue);
        }
        w.u32(self.counters.len() as u32);
        for (k, v) in &self.counters {
            w.str(k);
            w.u64(*v);
        }
        w.into_bytes()
    }

    /// Parses a wire-encoded snapshot.
    pub fn from_wire_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = ByteReader::new(bytes);
        let now = r.f64()?;
        let mut donors = Vec::new();
        for _ in 0..r.count(54)? {
            donors.push(DonorStatus {
                client: r.u64()? as ClientId,
                ops_per_sec: r.f64()?,
                units_completed: r.u64()?,
                leases: r.u32()?,
                trusted: r.u8()? != 0,
                agreements: r.u64()?,
                disputes: r.u64()?,
                flagged: r.u8()? != 0,
                health_ratio: r.f64()?,
            });
        }
        let mut problems = Vec::new();
        for _ in 0..r.count(37)? {
            problems.push(ProblemStatus {
                problem: r.u64()? as ProblemId,
                name: r.str()?,
                done: r.u8()? != 0,
                completed_units: r.u64()?,
                assignments: r.u64()?,
                in_flight: r.u32()?,
                reissue_queue: r.u32()?,
            });
        }
        let mut counters = Vec::new();
        for _ in 0..r.count(12)? {
            counters.push((r.str()?, r.u64()?));
        }
        r.finish()?;
        Ok(Self {
            now,
            donors,
            problems,
            counters,
        })
    }

    /// Renders the snapshot as one deterministic JSON object (fixed
    /// field order, donors/counters pre-sorted), the schema
    /// `biodist_top --once` prints and the ops-smoke CI job checks.
    pub fn to_json(&self) -> String {
        use crate::telemetry::{fmt_f64, json_string};
        let donors: Vec<String> = self
            .donors
            .iter()
            .map(|d| {
                format!(
                    "{{\"client\":{},\"ops_per_sec\":{},\"units_completed\":{},\
                     \"leases\":{},\"trusted\":{},\"agreements\":{},\"disputes\":{},\
                     \"flagged\":{},\"health_ratio\":{}}}",
                    d.client,
                    fmt_f64(d.ops_per_sec),
                    d.units_completed,
                    d.leases,
                    d.trusted,
                    d.agreements,
                    d.disputes,
                    d.flagged,
                    fmt_f64(d.health_ratio),
                )
            })
            .collect();
        let problems: Vec<String> = self
            .problems
            .iter()
            .map(|p| {
                format!(
                    "{{\"problem\":{},\"name\":{},\"done\":{},\"completed_units\":{},\
                     \"assignments\":{},\"in_flight\":{},\"reissue_queue\":{}}}",
                    p.problem,
                    json_string(&p.name),
                    p.done,
                    p.completed_units,
                    p.assignments,
                    p.in_flight,
                    p.reissue_queue,
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_string(k)))
            .collect();
        format!(
            "{{\"now\":{},\"donors\":[{}],\"problems\":[{}],\"counters\":{{{}}}}}",
            fmt_f64(self.now),
            donors.join(","),
            problems.join(","),
            counters.join(","),
        )
    }
}

/// The distributed system's server (paper §2.1).
pub struct Server {
    sched: Scheduler,
    problems: Vec<ProblemState>,
    weights: Vec<u32>,
    // Weighted round-robin cycle over problem ids and the cursor into it.
    cycle: Vec<ProblemId>,
    rotation: usize,
    journal: Option<Box<dyn RunJournal>>,
    telemetry: Telemetry,
    // Streaming straggler detector, present iff the scheduler config
    // enables it. Fed one normalized service-time observation per
    // accepted result; its flag transitions drive the scheduler's
    // affinity deprioritization and the live speculative-rescue pass.
    health: Option<HealthEngine>,
}

impl Server {
    /// Creates a server with the given scheduler configuration.
    pub fn new(cfg: SchedulerConfig) -> Self {
        let health = cfg.enable_health_detector.then(|| {
            HealthEngine::new(HealthConfig {
                straggler_ratio: cfg.health_straggler_ratio,
                clear_ratio: cfg.health_clear_ratio,
                min_observations: cfg.health_min_observations,
                ..HealthConfig::default()
            })
        });
        Self {
            sched: Scheduler::new(cfg),
            problems: Vec::new(),
            weights: Vec::new(),
            cycle: Vec::new(),
            rotation: 0,
            journal: None,
            telemetry: Telemetry::default(),
            health,
        }
    }

    /// The streaming health engine, when the detector is enabled.
    pub fn health(&self) -> Option<&HealthEngine> {
        self.health.as_ref()
    }

    /// Installs a durability journal; every subsequent unit issue and
    /// result fold is reported to it (see [`RunJournal`]).
    pub fn set_journal(&mut self, journal: Box<dyn RunJournal>) {
        self.journal = Some(journal);
    }

    /// Installs a telemetry domain: lifecycle events and metrics flow
    /// into it from every subsequent server call, and the handle is
    /// propagated to every data manager (already-submitted and future)
    /// so applications can record their own events.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        let tel = self.telemetry.clone();
        for (pid, p) in self.problems.iter_mut().enumerate() {
            p.dm.attach_telemetry(tel.clone(), pid);
            tel.emit(EventKind::ProblemSubmitted {
                problem: pid,
                name: p.name.clone(),
            });
        }
    }

    /// The server's telemetry handle (disabled unless
    /// [`Server::set_telemetry`] installed a live one). Backends clone
    /// it to stamp their own events.
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Submits a problem with fair-share weight 1; returns its id.
    /// Problems may be submitted at any time, including while others
    /// are running.
    pub fn submit(&mut self, problem: Problem) -> ProblemId {
        self.submit_with_weight(problem, 1)
    }

    /// Submits a problem with a fair-share `weight`: when several
    /// problems have work available, assignments are interleaved in
    /// proportion to the weights (a weight-3 problem receives three
    /// assignment opportunities for every one a weight-1 problem gets).
    ///
    /// # Panics
    /// Panics if `weight` is zero.
    pub fn submit_with_weight(&mut self, problem: Problem, weight: u32) -> ProblemId {
        assert!(weight >= 1, "fair-share weight must be at least 1");
        let id = self.problems.len();
        self.weights.push(weight);
        self.problems.push(ProblemState {
            name: problem.name,
            dm: problem.data_manager,
            algorithm: problem.algorithm,
            setup_bytes: problem.setup_bytes,
            codec: problem.codec,
            in_flight: HashMap::new(),
            reissue: VecDeque::new(),
            pool: VecDeque::new(),
            next_deadline: f64::INFINITY,
            reissue_counts: HashMap::new(),
            votes: HashMap::new(),
            done: false,
            output: None,
            completion_time: None,
            stats: ProblemStats::default(),
        });
        self.rebuild_cycle();
        if self.telemetry.is_enabled() {
            let tel = self.telemetry.clone();
            self.problems[id].dm.attach_telemetry(tel.clone(), id);
            tel.emit(EventKind::ProblemSubmitted {
                problem: id,
                name: self.problems[id].name.clone(),
            });
        }
        id
    }

    // Interleaved weighted round-robin: pass k of max-weight passes
    // includes every problem whose weight exceeds k, so 3:1 weights
    // yield the cycle [0, 1, 0, 0].
    fn rebuild_cycle(&mut self) {
        let max_w = self.weights.iter().copied().max().unwrap_or(1);
        self.cycle.clear();
        for k in 0..max_w {
            for (pid, &w) in self.weights.iter().enumerate() {
                if w > k {
                    self.cycle.push(pid);
                }
            }
        }
        self.rotation %= self.cycle.len().max(1);
    }

    /// Number of submitted problems.
    pub fn problem_count(&self) -> usize {
        self.problems.len()
    }

    /// Name of a problem.
    pub fn problem_name(&self, id: ProblemId) -> &str {
        &self.problems[id].name
    }

    /// Setup download size of a problem (for the simulated network).
    pub fn setup_bytes(&self, id: ProblemId) -> u64 {
        self.problems[id].setup_bytes
    }

    /// Whether every submitted problem has completed.
    pub fn all_complete(&self) -> bool {
        self.problems.iter().all(|p| p.done)
    }

    /// Whether a specific problem has completed.
    pub fn is_complete(&self, id: ProblemId) -> bool {
        self.problems[id].done
    }

    /// Virtual/wall time at which a problem completed.
    pub fn completion_time(&self, id: ProblemId) -> Option<f64> {
        self.problems[id].completion_time
    }

    /// Dispatch statistics for a problem.
    pub fn stats(&self, id: ProblemId) -> ProblemStats {
        self.problems[id].stats
    }

    /// Takes the final output of a completed problem.
    pub fn take_output(&mut self, id: ProblemId) -> Option<Payload> {
        self.problems[id].output.take()
    }

    /// Read access to the scheduler (for reports).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// The client-side computation of a problem (the TCP backend ships
    /// it to in-process donor threads; a real deployment would ship
    /// code, which stays out of scope — DESIGN.md substitution table).
    pub fn algorithm(&self, id: ProblemId) -> Arc<dyn Algorithm> {
        self.problems[id].algorithm.clone()
    }

    /// The payload codec of a problem, if one was registered.
    pub fn codec(&self, id: ProblemId) -> Option<Arc<dyn WireCodec>> {
        self.problems[id].codec.clone()
    }

    /// Earliest lease deadline across every unfinished problem
    /// (`+inf` when nothing is in flight). The TCP backend's ticker
    /// uses it to pace timeout sweeps.
    pub fn earliest_lease_deadline(&self) -> f64 {
        self.problems
            .iter()
            .filter(|p| !p.done)
            .map(|p| p.next_deadline)
            .fold(f64::INFINITY, f64::min)
    }

    /// A client asks for work at time `now`.
    pub fn request_work(&mut self, client: ClientId, now: f64) -> Assignment {
        self.telemetry.set_now(now);
        if self.all_complete() {
            return Assignment::Finished;
        }
        let n = self.cycle.len();
        let hint = self.sched.granularity_hint(client);

        // Pass 0 (live straggler rescue): a unit whose *every* lease
        // sits on a health-flagged donor gets one healthy copy right
        // now — before fresh work — so a live-detected straggler cannot
        // drag its unit into the end-game tail.
        if let Some((pid, uid)) = self.live_rescue_pick(client) {
            self.telemetry.counter_add("health.live_rescues", 1);
            let unit = self.problems[pid].in_flight[&uid].unit.clone();
            return self.lease_and_assign(pid, unit, client, now, true);
        }

        // Pass 1: fresh or reissued units, weighted fair-share.
        for k in 0..n {
            let pos = (self.rotation + k) % n;
            let pid = self.cycle[pos];
            if self.problems[pid].done {
                continue;
            }
            if let Some((unit, crosscheck)) = self.next_unit_for(pid, hint, client) {
                self.rotation = (pos + 1) % n;
                if crosscheck {
                    self.telemetry
                        .counter_add("quorum.crosscheck_dispatches", 1);
                }
                return self.lease_and_assign(pid, unit, client, now, crosscheck);
            }
        }

        // Pass 2: redundant end-game dispatch of the longest-running
        // in-flight unit this client is not already computing (and, under
        // quorum, has not already voted on). With the health detector
        // enabled, units whose holders include a flagged straggler are
        // rescued first (flagged-holder beats merely-oldest), and live
        // detection arms speculation past the plain redundancy cap even
        // when `enable_speculative_reissue` is off.
        let mut best: Option<(ProblemId, UnitId, f64, bool, bool)> = None;
        for (pid, p) in self.problems.iter().enumerate() {
            if p.done {
                continue;
            }
            for (uid, inf) in &p.in_flight {
                let copies = inf.leases.len() as u32;
                let holder_flagged = inf
                    .leases
                    .iter()
                    .any(|l| self.sched.is_health_flagged(l.client));
                let redundant_ok = self.sched.may_dispatch_redundant(copies);
                // Speculative tail re-issue: past the plain redundancy
                // cap but under the speculative one, idle donors attack
                // the makespan droop of Figure 1.
                let speculative = !redundant_ok
                    && (self.sched.may_dispatch_speculative(copies)
                        || (holder_flagged
                            && !self.sched.is_health_flagged(client)
                            && self.sched.may_dispatch_speculative_live(copies)));
                if !redundant_ok && !speculative {
                    continue;
                }
                if inf.leases.iter().any(|l| l.client == client) {
                    continue;
                }
                if p.votes.get(uid).is_some_and(|t| t.has_voted(client)) {
                    continue;
                }
                let oldest = inf
                    .leases
                    .iter()
                    .map(|l| l.assigned_at)
                    .fold(f64::INFINITY, f64::min);
                let better = best
                    .map(|(_, _, t, _, f)| {
                        (holder_flagged && !f) || (holder_flagged == f && oldest < t)
                    })
                    .unwrap_or(true);
                if better {
                    best = Some((pid, *uid, oldest, speculative, holder_flagged));
                }
            }
        }
        if let Some((pid, uid, _, speculative, _)) = best {
            if speculative {
                self.telemetry.counter_add("sched.speculative_reissues", 1);
            }
            let unit = self.problems[pid].in_flight[&uid].unit.clone();
            return self.lease_and_assign(pid, unit, client, now, true);
        }

        Assignment::Wait
    }

    /// Priority work only: live straggler rescue, reissued units, and
    /// quorum cross-check top-ups — every dispatch that must beat
    /// fresh issuance. `Some(Finished)` when every problem is done,
    /// `None` when only fresh (or end-game speculative) work remains.
    ///
    /// This is the first step of the sharded dispatch plane's request
    /// path: these queues are centrally owned (recovery, quorum and
    /// reissue order stay global), so every shard serves them through
    /// the one server lock before touching its claimed-unit queues.
    pub fn priority_work(&mut self, client: ClientId, now: f64) -> Option<Assignment> {
        self.telemetry.set_now(now);
        if self.all_complete() {
            return Some(Assignment::Finished);
        }
        if let Some((pid, uid)) = self.live_rescue_pick(client) {
            self.telemetry.counter_add("health.live_rescues", 1);
            let unit = self.problems[pid].in_flight[&uid].unit.clone();
            return Some(self.lease_and_assign(pid, unit, client, now, true));
        }
        let n = self.cycle.len();
        for k in 0..n {
            let pos = (self.rotation + k) % n;
            let pid = self.cycle[pos];
            if self.problems[pid].done {
                continue;
            }
            if let Some((unit, crosscheck)) = self.priority_unit_for(pid, client) {
                self.rotation = (pos + 1) % n;
                if crosscheck {
                    self.telemetry
                        .counter_add("quorum.crosscheck_dispatches", 1);
                }
                return Some(self.lease_and_assign(pid, unit, client, now, crosscheck));
            }
        }
        None
    }

    /// Pulls up to `max` fresh units from the data managers for a
    /// shard's claimed-unit queue, following the same weighted
    /// round-robin cycle as pass 1 of [`Server::request_work`] and
    /// sized by `client`'s granularity hint. Every pull is journaled
    /// exactly like a direct issue, so a crash recovers claimed-but-
    /// unleased units as pending — they are never lost, only re-homed.
    pub fn claim_units(
        &mut self,
        client: ClientId,
        max: usize,
        now: f64,
    ) -> Vec<(ProblemId, Arc<WorkUnit>)> {
        self.telemetry.set_now(now);
        let hint = self.sched.granularity_hint(client);
        let n = self.cycle.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        let mut pos = self.rotation;
        let mut misses = 0usize;
        while out.len() < max && misses < n {
            let pid = self.cycle[pos % n];
            pos += 1;
            if self.problems[pid].done {
                misses += 1;
                continue;
            }
            let p = &mut self.problems[pid];
            let Some(unit) = p.dm.next_unit(hint) else {
                misses += 1;
                continue;
            };
            if let Some(j) = self.journal.as_mut() {
                j.unit_issued(pid, &unit, hint);
            }
            self.telemetry.emit(EventKind::UnitCreated {
                problem: pid,
                unit: unit.id,
                cost_ops: unit.cost_ops,
            });
            self.telemetry
                .observe("server.unit_cost_ops", OPS_BOUNDS, unit.cost_ops);
            out.push((pid, Arc::new(unit)));
            misses = 0;
            self.rotation = pos % n;
        }
        out
    }

    /// Leases a previously [claimed](Server::claim_units) unit to
    /// `client`. `None` means the problem completed while the unit sat
    /// in a shard queue — the caller drops it (its result was already
    /// obtained, or the data manager no longer wants it).
    pub fn lease_claimed(
        &mut self,
        client: ClientId,
        problem: ProblemId,
        unit: Arc<WorkUnit>,
        now: f64,
    ) -> Option<Assignment> {
        self.telemetry.set_now(now);
        if self.problems[problem].done {
            return None;
        }
        Some(self.lease_and_assign(problem, unit, client, now, false))
    }

    /// Index of the best claimed candidate for `client` — the same
    /// chunk-affinity scoring the lookahead pool uses, so sharding does
    /// not regress data movement. Front wins ties and the no-affinity
    /// case, preserving claim order.
    pub fn claimed_pick(
        &self,
        client: ClientId,
        candidates: &VecDeque<(ProblemId, Arc<WorkUnit>)>,
    ) -> usize {
        if candidates.len() <= 1 || self.sched.affinity_entries(client) == 0 {
            return 0;
        }
        let mut best = 0usize;
        let mut best_score = self.unit_affinity(candidates[0].0, client, &candidates[0].1);
        for (i, (pid, u)) in candidates.iter().enumerate().skip(1) {
            let s = self.unit_affinity(*pid, client, u);
            if s > best_score {
                best = i;
                best_score = s;
            }
        }
        best
    }

    // The all-flagged rescue candidate for pass 0 of `request_work` /
    // `priority_work`, compared on `(oldest lease, problem, unit)` so
    // HashMap iteration order never leaks into dispatch order. The
    // all-flagged guard self-limits the pass to one rescue copy per
    // unit: once it runs, an unflagged lease exists.
    fn live_rescue_pick(&self, client: ClientId) -> Option<(ProblemId, UnitId)> {
        if !self.sched.config().enable_health_detector || self.sched.is_health_flagged(client) {
            return None;
        }
        let mut rescue: Option<(f64, ProblemId, UnitId)> = None;
        for (pid, p) in self.problems.iter().enumerate() {
            if p.done {
                continue;
            }
            for (uid, inf) in &p.in_flight {
                if inf.leases.is_empty()
                    || !inf
                        .leases
                        .iter()
                        .all(|l| self.sched.is_health_flagged(l.client))
                {
                    continue;
                }
                if !self
                    .sched
                    .may_dispatch_speculative_live(inf.leases.len() as u32)
                {
                    continue;
                }
                if p.votes.get(uid).is_some_and(|t| t.has_voted(client)) {
                    continue;
                }
                let oldest = inf
                    .leases
                    .iter()
                    .map(|l| l.assigned_at)
                    .fold(f64::INFINITY, f64::min);
                let cand = (oldest, pid, *uid);
                if rescue.map(|b| cand < b).unwrap_or(true) {
                    rescue = Some(cand);
                }
            }
        }
        rescue.map(|(_, pid, uid)| (pid, uid))
    }

    // The priority (non-fresh) unit of `pid` this client may execute:
    // the reissue queue, then quorum cross-check top-ups. Split out of
    // `next_unit_for` so the sharded dispatch plane can serve these
    // centrally-owned queues before touching its claimed-unit queues.
    fn priority_unit_for(
        &mut self,
        pid: ProblemId,
        client: ClientId,
    ) -> Option<(Arc<WorkUnit>, bool)> {
        // Reissue queue first, always: orphaned units must go back out
        // before fresh ones. Affinity only reorders *within* the queue
        // (front wins every tie, so configurations that never note
        // chunks keep strict FIFO reissue order). Units this client has
        // already voted on are skipped — one vote per donor.
        if !self.problems[pid].reissue.is_empty() {
            if let Some(idx) = self.reissue_pick(pid, client) {
                // A reissue of an already-journaled unit: not a new issue.
                return self.problems[pid].reissue.remove(idx).map(|u| (u, false));
            }
        }
        // Cross-check top-up: under K-way quorum issuance, a unit that
        // went to an untrusted donor wants `quorum_k` live executions in
        // parallel, not one at a time — top up its copies before pulling
        // fresh work. Lowest unit id wins for determinism.
        if self.sched.quorum_enabled() {
            let p = &self.problems[pid];
            let k = self.sched.config().quorum_k;
            let mut pick: Option<UnitId> = None;
            for (uid, inf) in &p.in_flight {
                let Some(t) = p.votes.get(uid) else { continue };
                if inf.leases.len() as u32 + t.votes() >= k {
                    continue;
                }
                if t.has_voted(client) || inf.leases.iter().any(|l| l.client == client) {
                    continue;
                }
                if pick.map(|b| *uid < b).unwrap_or(true) {
                    pick = Some(*uid);
                }
            }
            if let Some(uid) = pick {
                return Some((p.in_flight[&uid].unit.clone(), true));
            }
        }
        None
    }

    // The next unit of `pid` this client may execute, with a flag
    // saying whether it is a quorum cross-check copy of an in-flight
    // unit rather than a fresh/reissued unit.
    fn next_unit_for(
        &mut self,
        pid: ProblemId,
        hint: f64,
        client: ClientId,
    ) -> Option<(Arc<WorkUnit>, bool)> {
        if let Some(hit) = self.priority_unit_for(pid, client) {
            return Some(hit);
        }
        // Refill the lookahead pool so affinity selection has
        // candidates; every pull is journaled exactly like a direct
        // issue (a crash before the lease recovers it as pending).
        let lookahead = self.sched.config().affinity_lookahead.max(1);
        while self.problems[pid].pool.len() < lookahead {
            let p = &mut self.problems[pid];
            let Some(unit) = p.dm.next_unit(hint) else {
                break;
            };
            if let Some(j) = self.journal.as_mut() {
                j.unit_issued(pid, &unit, hint);
            }
            self.telemetry.emit(EventKind::UnitCreated {
                problem: pid,
                unit: unit.id,
                cost_ops: unit.cost_ops,
            });
            self.telemetry
                .observe("server.unit_cost_ops", OPS_BOUNDS, unit.cost_ops);
            self.problems[pid].pool.push_back(Arc::new(unit));
        }
        if self.problems[pid].pool.is_empty() {
            return None;
        }
        let idx = self.best_pool_index(pid, client);
        self.problems[pid].pool.remove(idx).map(|u| (u, false))
    }

    // Index of the best reissue-queue unit `client` may execute
    // (best affinity, front wins ties), or `None` when every queued
    // unit is vote-blocked for this client under quorum.
    fn reissue_pick(&self, pid: ProblemId, client: ClientId) -> Option<usize> {
        let p = &self.problems[pid];
        let affinity = self.sched.affinity_entries(client) > 0;
        let mut best: Option<(usize, usize)> = None;
        for (i, u) in p.reissue.iter().enumerate() {
            if p.votes.get(&u.id).is_some_and(|t| t.has_voted(client)) {
                continue;
            }
            if !affinity {
                return Some(i);
            }
            let s = self.unit_affinity(pid, client, u);
            if best.map(|(_, bs)| s > bs).unwrap_or(true) {
                best = Some((i, s));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Whether `client` holds any chunk-affinity entries — when it
    /// does, the sharded dispatch plane widens its claimed-unit pick
    /// from its own shard's queue to every queue, so sharding cannot
    /// strand a unit away from the donor already caching its data.
    pub fn has_affinity(&self, client: ClientId) -> bool {
        self.sched.affinity_entries(client) > 0
    }

    /// [`unit_affinity`](Self::unit_affinity) for a claimed unit — the
    /// scoring behind the sharded plane's cross-shard affinity pick.
    pub fn claimed_affinity(&self, client: ClientId, problem: ProblemId, unit: &WorkUnit) -> usize {
        self.unit_affinity(problem, client, unit)
    }

    // Affinity score of `unit` for `client`: how many of the unit's
    // data chunks the donor is already caching (0 when the problem has
    // no codec, the codec externalises no data, or affinity is off).
    fn unit_affinity(&self, pid: ProblemId, client: ClientId, unit: &WorkUnit) -> usize {
        let Some(codec) = self.problems[pid].codec.as_ref() else {
            return 0;
        };
        let needs = codec.unit_chunks(&unit.payload);
        if needs.is_empty() {
            return 0;
        }
        let digests: Vec<u64> = needs.iter().map(|n| n.digest).collect();
        self.sched.affinity_score(client, &digests)
    }

    // Index of the best-affinity unit in `pid`'s lookahead pool; the
    // front wins ties and the no-affinity-data case.
    fn best_pool_index(&self, pid: ProblemId, client: ClientId) -> usize {
        let p = &self.problems[pid];
        let queue = &p.pool;
        if queue.len() <= 1 || self.sched.affinity_entries(client) == 0 {
            return 0;
        }
        let mut best = 0usize;
        let mut best_score = self.unit_affinity(pid, client, &queue[0]);
        for (i, u) in queue.iter().enumerate().skip(1) {
            let s = self.unit_affinity(pid, client, u);
            if s > best_score {
                best = i;
                best_score = s;
            }
        }
        best
    }

    fn lease_and_assign(
        &mut self,
        pid: ProblemId,
        unit: Arc<WorkUnit>,
        client: ClientId,
        now: f64,
        redundant: bool,
    ) -> Assignment {
        // Exponential backoff: every expiry doubles the next lease, so a
        // unit whose true cost exceeds the estimate converges instead of
        // bouncing between reissue and the same slow donor forever. The
        // scheduler clamps both the doubling count and the absolute
        // lease length.
        let expiries = self.problems[pid]
            .reissue_counts
            .get(&unit.id)
            .copied()
            .unwrap_or(0);
        let deadline =
            self.sched
                .lease_deadline_jittered(client, unit.cost_ops, now, expiries, unit.id);
        self.telemetry.emit(EventKind::UnitIssued {
            problem: pid,
            unit: unit.id,
            client,
            redundant,
        });
        self.telemetry.counter_add("server.assignments", 1);
        if redundant {
            self.telemetry.counter_add("server.redundant_dispatches", 1);
        }
        let p = &mut self.problems[pid];
        p.next_deadline = p.next_deadline.min(deadline);
        p.stats.assignments += 1;
        if redundant {
            p.stats.redundant_dispatches += 1;
        }
        p.in_flight
            .entry(unit.id)
            .or_insert_with(|| InFlight {
                unit: unit.clone(),
                leases: Vec::new(),
            })
            .leases
            .push(Lease {
                client,
                assigned_at: now,
                deadline,
            });
        // Under quorum, a unit reaching an untrusted donor starts a
        // byte-identical vote: nothing is combined until enough live
        // candidates agree. Trusted donors stay single-issue (their
        // lone result folds directly unless a vote is already open).
        if self.sched.quorum_enabled()
            && p.codec.is_some()
            && !p.votes.contains_key(&unit.id)
            && self.sched.required_copies(client) > 1
        {
            p.votes
                .insert(unit.id, QuorumTally::new(self.sched.required_votes()));
        }
        Assignment::Unit {
            problem: pid,
            unit,
            algorithm: p.algorithm.clone(),
        }
    }

    /// A client reports a result at time `now`. Returns `true` if the
    /// result advanced the unit — folded directly, folded via a
    /// completed quorum, or recorded as a pending quorum vote — and
    /// `false` if it was discarded.
    pub fn submit_result(
        &mut self,
        client: ClientId,
        problem: ProblemId,
        result: TaskResult,
        now: f64,
    ) -> bool {
        self.telemetry.set_now(now);
        let p = &mut self.problems[problem];
        let inf = match p.in_flight.remove(&result.unit_id) {
            Some(inf) => Some(inf),
            None => {
                // The lease may have expired while the (slow) client was
                // still computing; if the unit is waiting for reissue,
                // this result is perfectly valid — accept it.
                let pos = p.reissue.iter().position(|u| u.id == result.unit_id);
                match pos {
                    Some(i) => {
                        let unit = p.reissue.remove(i).expect("position is valid");
                        Some(InFlight {
                            unit,
                            leases: Vec::new(),
                        })
                    }
                    None => None,
                }
            }
        };
        let Some(mut inf) = inf else {
            p.stats.wasted_results += 1;
            self.telemetry.emit(EventKind::ResultWasted {
                problem,
                unit: result.unit_id,
                client,
            });
            self.telemetry.counter_add("server.wasted_results", 1);
            return false;
        };
        // Feed the adaptive scheduler with this client's turnaround.
        let mut latency = 0.0;
        if let Some(lease) = inf.leases.iter().find(|l| l.client == client) {
            latency = now - lease.assigned_at;
            // The health observation is normalized by the *pre-update*
            // speed estimate: "how much longer than this donor's priced
            // speed predicts" — an honest-but-slow machine scores ~1.0,
            // a degraded one drifts up regardless of its nominal speed.
            if let Some(h) = self.health.as_mut() {
                let predicted = inf.unit.cost_ops / self.sched.estimated_speed(client);
                if predicted > 0.0 && predicted.is_finite() {
                    match h.observe(client, latency / predicted) {
                        Some(HealthTransition::Flagged { ratio }) => {
                            self.sched.set_health_flag(client, true);
                            self.telemetry
                                .emit(EventKind::DonorFlagged { client, ratio });
                            self.telemetry.counter_add("health.flagged_total", 1);
                            h.export_metrics(&self.telemetry);
                        }
                        Some(HealthTransition::Cleared { ratio }) => {
                            self.sched.set_health_flag(client, false);
                            self.telemetry
                                .emit(EventKind::DonorCleared { client, ratio });
                            self.telemetry.counter_add("health.cleared_total", 1);
                            h.export_metrics(&self.telemetry);
                        }
                        None => {}
                    }
                }
            }
            self.sched
                .record_completion(client, inf.unit.cost_ops, latency);
            self.telemetry
                .observe("server.unit_latency", LATENCY_BOUNDS, latency);
            self.sched.export_client_metrics(client, &self.telemetry);
        }

        // Quorum interception: under K-way issuance a candidate for a
        // unit mid-vote — or from an untrusted donor — is a *vote*,
        // keyed by its codec wire bytes, not an immediate fold. The
        // combine path runs only once a quorum of byte-identical
        // candidates agrees; candidates that disagree with the winner
        // go through the `result_disputed` path when the vote resolves.
        let unit_id = result.unit_id;
        let needs_vote = p.votes.contains_key(&unit_id)
            || (self.sched.quorum_enabled() && p.codec.is_some() && !self.sched.is_trusted(client));
        let encoded_for_vote = if needs_vote {
            p.codec
                .as_ref()
                .and_then(|c| c.encode_result(&result.payload).ok())
        } else {
            None
        };
        let (result, pre_encoded) = match encoded_for_vote {
            None => {
                if needs_vote {
                    // No comparable wire form — degrade to a direct fold.
                    p.votes.remove(&unit_id);
                }
                (result, None)
            }
            Some(bytes) => {
                let needed = self.sched.required_votes();
                let tally = p
                    .votes
                    .entry(unit_id)
                    .or_insert_with(|| QuorumTally::new(needed));
                match tally.vote(client, bytes.clone(), result) {
                    VoteOutcome::AlreadyVoted => {
                        // A duplicated delivery of a vote already
                        // counted: discard it and put the unit back to
                        // keep gathering the remaining votes.
                        inf.leases.retain(|l| l.client != client);
                        p.stats.wasted_results += 1;
                        self.telemetry.emit(EventKind::ResultWasted {
                            problem,
                            unit: unit_id,
                            client,
                        });
                        self.telemetry.counter_add("server.wasted_results", 1);
                        Self::requeue_for_votes(p, problem, inf, &self.telemetry);
                        return false;
                    }
                    VoteOutcome::Pending => {
                        let needed = tally.needed();
                        if let Some(j) = self.journal.as_mut() {
                            j.vote_recorded(problem, unit_id, needed, client, &bytes);
                        }
                        self.telemetry.counter_add("quorum.votes", 1);
                        inf.leases.retain(|l| l.client != client);
                        Self::requeue_for_votes(p, problem, inf, &self.telemetry);
                        return true;
                    }
                    VoteOutcome::Quorum {
                        result,
                        bytes,
                        agreed,
                        dissenters,
                    } => {
                        p.votes.remove(&unit_id);
                        self.telemetry.counter_add("quorum.agreed", 1);
                        // Dissenting candidates lost the vote: dispute
                        // them (reputation demotion + telemetry); their
                        // leases were already released when their votes
                        // were recorded.
                        for &d in &dissenters {
                            p.stats.disputed_results += 1;
                            self.telemetry.emit(EventKind::ResultDisputed {
                                problem,
                                unit: unit_id,
                                client: d,
                            });
                            self.telemetry.counter_add("quorum.disputed", 1);
                            if self.sched.note_dispute(d) {
                                self.telemetry.counter_add("reputation.demotions", 1);
                            }
                        }
                        for &a in &agreed {
                            if self.sched.note_quorum_agreement(a) {
                                self.telemetry.counter_add("reputation.promotions", 1);
                            }
                        }
                        (result, Some(bytes))
                    }
                }
            }
        };

        self.telemetry.emit(EventKind::UnitCompleted {
            problem,
            unit: unit_id,
            client,
            latency,
        });
        self.telemetry.counter_add("server.completed_units", 1);
        // Drop any queued reissue copies of this unit.
        p.reissue.retain(|u| u.id != unit_id);

        // Journal the accepted result *before* folding: a crash after
        // the log write but before the fold replays an action that was
        // about to happen; a crash during the write leaves a torn tail
        // the recovery drops, and the unit is simply recomputed. A
        // quorum winner journals its winning wire bytes verbatim.
        if let Some(j) = self.journal.as_mut() {
            let encoded = match &pre_encoded {
                Some(b) => Some(b.clone()),
                None => p
                    .codec
                    .as_ref()
                    .and_then(|c| c.encode_result(&result.payload).ok()),
            };
            if let Some(b) = encoded {
                j.result_folded(problem, unit_id, &b);
            }
        }

        p.dm.accept_result(result);
        p.stats.completed_units += 1;
        self.telemetry.emit(EventKind::UnitCombined {
            problem,
            unit: unit_id,
        });

        let p = &mut self.problems[problem];
        if p.dm.is_complete() && !p.done {
            p.done = true;
            p.output = Some(p.dm.final_output());
            p.completion_time = Some(now);
            p.in_flight.clear();
            p.reissue.clear();
            p.pool.clear();
            p.votes.clear();
            p.next_deadline = f64::INFINITY;
            self.telemetry.emit(EventKind::ProblemCompleted { problem });
        }
        true
    }

    // After a non-final quorum vote the unit still needs more live
    // executions: keep it in flight if other copies are computing,
    // otherwise queue it for reissue so a fresh donor can vote.
    fn requeue_for_votes(p: &mut ProblemState, problem: ProblemId, inf: InFlight, tel: &Telemetry) {
        let unit = inf.unit.id;
        if inf.leases.is_empty() {
            if !p.reissue.iter().any(|u| u.id == unit) {
                p.reissue.push_back(inf.unit);
                tel.emit(EventKind::UnitReissued {
                    problem,
                    unit,
                    reason: "quorum_pending".to_string(),
                });
            }
        } else {
            p.in_flight.insert(unit, inf);
        }
    }

    /// Expires overdue leases; fully expired units are queued for
    /// reissue. Returns the number of units queued.
    pub fn check_timeouts(&mut self, now: f64) -> usize {
        self.telemetry.set_now(now);
        let tel = self.telemetry.clone();
        let mut reissued = 0;
        for (pid, p) in self.problems.iter_mut().enumerate() {
            if p.done {
                continue;
            }
            // Nothing can have expired before the earliest tracked
            // deadline — skip the full lease scan for this problem.
            if now < p.next_deadline {
                continue;
            }
            let mut expired_leases: Vec<(UnitId, ClientId)> = Vec::new();
            let mut expired_units = Vec::new();
            let mut earliest = f64::INFINITY;
            for (uid, inf) in &mut p.in_flight {
                for l in inf.leases.iter().filter(|l| l.deadline <= now) {
                    expired_leases.push((*uid, l.client));
                }
                inf.leases.retain(|l| l.deadline > now);
                if inf.leases.is_empty() {
                    expired_units.push(*uid);
                } else {
                    for l in &inf.leases {
                        earliest = earliest.min(l.deadline);
                    }
                }
            }
            // Sorted processing: HashMap iteration order varies run to
            // run, and both the reissue queue order and the trace bytes
            // must not.
            expired_leases.sort_unstable();
            expired_units.sort_unstable();
            p.next_deadline = earliest;
            for &(uid, client) in &expired_leases {
                tel.emit(EventKind::LeaseExpired {
                    problem: pid,
                    unit: uid,
                    client,
                });
            }
            tel.counter_add("server.lease_expirations", expired_leases.len() as u64);
            for uid in expired_units {
                let inf = p.in_flight.remove(&uid).expect("present");
                p.reissue.push_back(inf.unit);
                let n = p.reissue_counts.entry(uid).or_insert(0);
                *n = n.saturating_add(1);
                p.stats.reissued_units += 1;
                reissued += 1;
                tel.emit(EventKind::UnitReissued {
                    problem: pid,
                    unit: uid,
                    reason: "lease_expired".to_string(),
                });
                tel.counter_add("server.reissued_units", 1);
            }
        }
        reissued
    }

    /// A client's result arrived corrupted (detected by the transport
    /// checksum): its lease on the unit is cancelled and, if no other
    /// copy is still in flight, the unit is queued for reissue. Unlike
    /// a lease expiry this does not bump the unit's backoff count — the
    /// donor was not slow, the wire was bad. Returns `true` if the
    /// corruption mattered (the unit was still pending).
    pub fn result_corrupted(
        &mut self,
        client: ClientId,
        problem: ProblemId,
        unit: UnitId,
        now: f64,
    ) -> bool {
        self.telemetry.set_now(now);
        let p = &mut self.problems[problem];
        if p.done {
            return false;
        }
        // Every detected corruption counts, even when another copy of
        // the unit already landed — the wire was bad either way. This is
        // also the *single* place the canonical `result_corrupted`
        // telemetry event is emitted: the sim/thread delivery faults and
        // the TCP frame-CRC and decode failures all route here, so the
        // trace count and `ProblemStats::corrupted_results` agree across
        // backends by construction.
        p.stats.corrupted_results += 1;
        self.telemetry.emit(EventKind::ResultCorrupted {
            problem,
            unit,
            client,
        });
        self.telemetry.counter_add("server.corrupted_results", 1);
        let Some(inf) = p.in_flight.get_mut(&unit) else {
            // Already completed by another copy or already queued for
            // reissue; nothing to cancel.
            return false;
        };
        inf.leases.retain(|l| l.client != client);
        if inf.leases.is_empty() {
            let inf = p.in_flight.remove(&unit).expect("present");
            p.reissue.push_back(inf.unit);
            self.telemetry.emit(EventKind::UnitReissued {
                problem,
                unit,
                reason: "corrupted".to_string(),
            });
        }
        true
    }

    /// A client left the pool (churn): its leases are cancelled and any
    /// unit left with no active lease is queued for reissue.
    pub fn client_gone(&mut self, client: ClientId) {
        let tel = self.telemetry.clone();
        tel.emit(EventKind::ClientLost { client });
        for (pid, p) in self.problems.iter_mut().enumerate() {
            if p.done {
                continue;
            }
            let mut orphaned = Vec::new();
            for (uid, inf) in &mut p.in_flight {
                inf.leases.retain(|l| l.client != client);
                if inf.leases.is_empty() {
                    orphaned.push(*uid);
                }
            }
            // Sorted for deterministic reissue order and trace bytes.
            orphaned.sort_unstable();
            for uid in orphaned {
                let inf = p.in_flight.remove(&uid).expect("present");
                p.reissue.push_back(inf.unit);
                p.stats.reissued_units += 1;
                tel.emit(EventKind::UnitReissued {
                    problem: pid,
                    unit: uid,
                    reason: "client_lost".to_string(),
                });
                tel.counter_add("server.reissued_units", 1);
            }
        }
        self.sched.forget_client(client);
        if let Some(h) = self.health.as_mut() {
            // A rejoining donor id starts over with a clean bill of
            // health — same direction as the reputation reset above.
            h.forget(client);
        }
    }

    // ---- crash recovery (driven by `net::checkpoint::recover`) ----

    /// Replays a journaled unit issue against the fresh data manager:
    /// calls `next_unit(hint_ops)` and checks the manager produced the
    /// unit the log recorded. `None` means the manager diverged (or had
    /// nothing to issue) — the caller must treat the rest of the log
    /// like a torn tail, because subsequent records describe state this
    /// manager never reached. Not reported to the journal: the record
    /// driving the replay is already in the log.
    pub fn replay_issue(
        &mut self,
        problem: ProblemId,
        expected_unit: UnitId,
        hint_ops: f64,
    ) -> Option<WorkUnit> {
        let unit = self.problems[problem].dm.next_unit(hint_ops)?;
        if unit.id != expected_unit {
            return None;
        }
        self.telemetry.emit(EventKind::ReplayIssue {
            problem,
            unit: unit.id,
        });
        Some(unit)
    }

    /// Replays a journaled result fold: the decoded result goes
    /// straight into the data manager (no lease bookkeeping — the
    /// crashed server already did the dedup before journaling).
    pub fn replay_result(&mut self, problem: ProblemId, result: TaskResult, now: f64) {
        self.telemetry.set_now(now);
        let unit_id = result.unit_id;
        let p = &mut self.problems[problem];
        p.dm.accept_result(result);
        p.stats.completed_units += 1;
        self.telemetry.emit(EventKind::ReplayResult {
            problem,
            unit: unit_id,
        });
        let p = &mut self.problems[problem];
        if p.dm.is_complete() && !p.done {
            p.done = true;
            p.output = Some(p.dm.final_output());
            p.completion_time = Some(now);
            p.next_deadline = f64::INFINITY;
            self.telemetry.emit(EventKind::ProblemCompleted { problem });
        }
    }

    /// Queues recovered-but-uncompleted units for reassignment (issued
    /// before the crash, no surviving result record — they must be
    /// recomputed, never re-pulled from the data manager, which has
    /// already moved past them).
    pub fn restore_pending(&mut self, problem: ProblemId, units: Vec<WorkUnit>) {
        let p = &mut self.problems[problem];
        for unit in units {
            p.reissue.push_back(Arc::new(unit));
        }
    }

    /// Restores in-flight quorum votes for a recovered-but-uncompleted
    /// unit. Restored votes are capped below the quorum size (see
    /// [`QuorumTally::restore_vote`]) so only a live recomputed result
    /// can resolve the vote — a recovered run never double-combines a
    /// half-voted unit. Returns how many votes were actually kept.
    pub fn restore_votes(
        &mut self,
        problem: ProblemId,
        unit: UnitId,
        needed: u32,
        votes: &[(ClientId, Vec<u8>)],
    ) -> u64 {
        let p = &mut self.problems[problem];
        if p.done {
            return 0;
        }
        let tally = p
            .votes
            .entry(unit)
            .or_insert_with(|| QuorumTally::new(needed.max(1)));
        let mut kept = 0;
        for (client, bytes) in votes {
            if tally.restore_vote(*client, bytes.clone()) {
                kept += 1;
            }
        }
        kept
    }

    /// Captures donor reputation for the checkpoint log.
    pub fn reputation_snapshot(&self) -> ReputationSnapshot {
        self.sched.reputation_snapshot()
    }

    /// Restores donor reputation from a recovered snapshot.
    pub fn restore_reputation(&mut self, snap: &ReputationSnapshot) {
        self.sched.restore_reputation(snap);
    }

    /// Restores the adaptive scheduler state from a recovered snapshot.
    pub fn restore_scheduler(&mut self, snap: &SchedSnapshot) {
        self.sched.restore(snap);
    }

    /// Captures the adaptive scheduler state for the checkpoint log.
    pub fn scheduler_snapshot(&self) -> SchedSnapshot {
        self.sched.snapshot()
    }

    // ---- chunk affinity (PR 5) ----

    /// Records that `client` now holds the given chunk digests in its
    /// donor-side cache. The transports call this when chunk bytes are
    /// actually delivered (not merely requested), so the map self-heals
    /// after a donor crash empties its cache: stale entries simply stop
    /// being refreshed and age out of the capped per-client window.
    pub fn note_client_chunks(&mut self, client: ClientId, digests: &[u64]) {
        self.sched.note_chunks(client, digests);
    }

    /// The data chunks a unit's payload needs fetched before compute
    /// (empty when the problem has no codec or the codec does not
    /// externalise data). The simulator uses this to model per-miss
    /// transfer costs against its virtual network.
    pub fn unit_chunk_needs(&self, id: ProblemId, payload: &Payload) -> Vec<ChunkNeed> {
        self.problems[id]
            .codec
            .as_ref()
            .map(|c| c.unit_chunks(payload))
            .unwrap_or_default()
    }

    /// Captures the chunk-affinity map for the checkpoint log.
    pub fn affinity_snapshot(&self) -> AffinitySnapshot {
        self.sched.affinity_snapshot()
    }

    /// Restores the chunk-affinity map from a recovered snapshot.
    pub fn restore_affinity(&mut self, snap: &AffinitySnapshot) {
        self.sched.restore_affinity(snap);
    }

    // ---- live status (ops plane) ----

    /// Captures a deterministic point-in-time cluster snapshot: the
    /// donor table is the union of every client the scheduler,
    /// reputation map, lease table or health engine knows about, sorted
    /// by id; counters come from the server's telemetry registry (empty
    /// when telemetry is disabled).
    pub fn status_snapshot(&self, now: f64) -> StatusSnapshot {
        let mut ids: BTreeSet<ClientId> = BTreeSet::new();
        for &(id, _, _) in &self.sched.snapshot().clients {
            ids.insert(id);
        }
        for &(id, ..) in &self.sched.reputation_snapshot().clients {
            ids.insert(id);
        }
        let mut lease_counts: HashMap<ClientId, u32> = HashMap::new();
        for p in &self.problems {
            for inf in p.in_flight.values() {
                for l in &inf.leases {
                    ids.insert(l.client);
                    *lease_counts.entry(l.client).or_insert(0) += 1;
                }
            }
        }
        if let Some(h) = &self.health {
            for id in h.flagged_clients() {
                ids.insert(id);
            }
        }
        let donors = ids
            .into_iter()
            .map(|id| {
                let (agreements, disputes) = self.sched.reputation_counts(id);
                DonorStatus {
                    client: id,
                    ops_per_sec: self.sched.estimated_speed(id),
                    units_completed: self.sched.units_completed(id),
                    leases: lease_counts.get(&id).copied().unwrap_or(0),
                    trusted: self.sched.is_trusted(id),
                    agreements,
                    disputes,
                    flagged: self.sched.is_health_flagged(id),
                    health_ratio: self
                        .health
                        .as_ref()
                        .and_then(|h| h.ratio(id))
                        .unwrap_or(0.0),
                }
            })
            .collect();
        let problems = self
            .problems
            .iter()
            .enumerate()
            .map(|(pid, p)| ProblemStatus {
                problem: pid,
                name: p.name.clone(),
                done: p.done,
                completed_units: p.stats.completed_units,
                assignments: p.stats.assignments,
                in_flight: p.in_flight.len() as u32,
                reissue_queue: p.reissue.len() as u32,
            })
            .collect();
        let counters = self
            .telemetry
            .metrics_snapshot()
            .counters
            .into_iter()
            .collect();
        StatusSnapshot {
            now,
            donors,
            problems,
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{DataManager, Problem};

    /// A problem that sums `1..=n` in fixed chunks of `chunk` integers.
    struct SumDm {
        next: u64,
        n: u64,
        chunk: u64,
        issued: u64,
        received: u64,
        total: u64,
        next_id: UnitId,
    }

    impl SumDm {
        fn new(n: u64, chunk: u64) -> Self {
            Self {
                next: 1,
                n,
                chunk,
                issued: 0,
                received: 0,
                total: 0,
                next_id: 0,
            }
        }
    }

    impl DataManager for SumDm {
        fn next_unit(&mut self, _hint: f64) -> Option<WorkUnit> {
            if self.next > self.n {
                return None;
            }
            let lo = self.next;
            let hi = (lo + self.chunk - 1).min(self.n);
            self.next = hi + 1;
            self.issued += 1;
            let id = self.next_id;
            self.next_id += 1;
            Some(WorkUnit {
                id,
                payload: Payload::new((lo, hi), 16),
                cost_ops: (hi - lo + 1) as f64,
            })
        }
        fn accept_result(&mut self, result: TaskResult) {
            self.total += result.payload.into_inner::<u64>();
            self.received += 1;
        }
        fn is_complete(&self) -> bool {
            self.next > self.n && self.received == self.issued
        }
        fn final_output(&mut self) -> Payload {
            Payload::new(self.total, 8)
        }
    }

    struct SumAlgo;
    impl Algorithm for SumAlgo {
        fn compute(&self, unit: &WorkUnit) -> TaskResult {
            let &(lo, hi) = unit.payload.downcast_ref::<(u64, u64)>().unwrap();
            TaskResult {
                unit_id: unit.id,
                payload: Payload::new((lo..=hi).sum::<u64>(), 8),
            }
        }
    }

    fn sum_problem(n: u64, chunk: u64) -> Problem {
        Problem::new("sum", Box::new(SumDm::new(n, chunk)), Arc::new(SumAlgo))
    }

    fn drive_to_completion(server: &mut Server, clients: &[ClientId]) -> Vec<u64> {
        let mut now = 0.0;
        let mut outputs = Vec::new();
        let mut guard = 0;
        loop {
            let mut any = false;
            for &c in clients {
                match server.request_work(c, now) {
                    Assignment::Unit {
                        problem,
                        unit,
                        algorithm,
                    } => {
                        let result = algorithm.compute(&unit);
                        now += 1.0;
                        server.submit_result(c, problem, result, now);
                        any = true;
                    }
                    Assignment::Wait => {}
                    Assignment::Finished => {
                        for pid in 0..server.problem_count() {
                            if let Some(out) = server.take_output(pid) {
                                outputs.push(out.into_inner::<u64>());
                            }
                        }
                        return outputs;
                    }
                }
            }
            if !any {
                now += 1.0;
            }
            guard += 1;
            assert!(guard < 100_000, "server failed to converge");
        }
    }

    /// Codec for `SumDm`'s `(lo, hi)` units that externalises one data
    /// chunk per integer in the range (chunk id = digest = the value),
    /// so tests can steer affinity with known digests.
    struct RangeCodec;
    impl WireCodec for RangeCodec {
        fn encode_unit(&self, p: &Payload) -> Result<Vec<u8>, crate::codec::WireError> {
            let &(lo, hi) = p.downcast_ref::<(u64, u64)>().unwrap();
            let mut w = crate::codec::ByteWriter::new();
            w.u64(lo);
            w.u64(hi);
            Ok(w.into_bytes())
        }
        fn decode_unit(&self, bytes: &[u8]) -> Result<Payload, crate::codec::WireError> {
            let mut r = crate::codec::ByteReader::new(bytes);
            let lo = r.u64()?;
            let hi = r.u64()?;
            r.finish()?;
            Ok(Payload::new((lo, hi), 16))
        }
        fn encode_result(&self, p: &Payload) -> Result<Vec<u8>, crate::codec::WireError> {
            let mut w = crate::codec::ByteWriter::new();
            w.u64(*p.downcast_ref::<u64>().unwrap());
            Ok(w.into_bytes())
        }
        fn decode_result(&self, bytes: &[u8]) -> Result<Payload, crate::codec::WireError> {
            let mut r = crate::codec::ByteReader::new(bytes);
            let v = r.u64()?;
            r.finish()?;
            Ok(Payload::new(v, 8))
        }
        fn unit_chunks(&self, p: &Payload) -> Vec<ChunkNeed> {
            let &(lo, hi) = p.downcast_ref::<(u64, u64)>().unwrap();
            (lo..=hi)
                .map(|v| ChunkNeed {
                    chunk: v,
                    digest: v,
                    bytes: 8,
                })
                .collect()
        }
    }

    #[test]
    fn affinity_prefers_units_whose_chunks_a_donor_holds() {
        let mut server = Server::new(SchedulerConfig {
            affinity_lookahead: 4,
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.submit(
            Problem::new("sum", Box::new(SumDm::new(40, 10)), Arc::new(SumAlgo))
                .with_codec(Arc::new(RangeCodec)),
        );
        // Donor 7 already caches the data of the third unit (21..=30).
        let digests: Vec<u64> = (21..=30).collect();
        server.note_client_chunks(7, &digests);
        let Assignment::Unit { unit, .. } = server.request_work(7, 0.0) else {
            panic!()
        };
        let &(lo, hi) = unit.payload.downcast_ref::<(u64, u64)>().unwrap();
        assert_eq!((lo, hi), (21, 30), "affinity must pick the cached unit");
        // A donor holding nothing gets the pool front (FIFO order).
        let Assignment::Unit { unit, .. } = server.request_work(0, 0.1) else {
            panic!()
        };
        let &(lo, hi) = unit.payload.downcast_ref::<(u64, u64)>().unwrap();
        assert_eq!((lo, hi), (1, 10));
    }

    #[test]
    fn lookahead_one_keeps_fifo_dispatch_despite_affinity() {
        // With the default lookahead of 1 the pool never holds more
        // than the unit about to be served, so noted chunks cannot
        // reorder dispatch — the pre-affinity order is preserved.
        let mut server = Server::new(SchedulerConfig {
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.submit(
            Problem::new("sum", Box::new(SumDm::new(40, 10)), Arc::new(SumAlgo))
                .with_codec(Arc::new(RangeCodec)),
        );
        let digests: Vec<u64> = (31..=40).collect();
        server.note_client_chunks(3, &digests);
        let Assignment::Unit { unit, .. } = server.request_work(3, 0.0) else {
            panic!()
        };
        let &(lo, hi) = unit.payload.downcast_ref::<(u64, u64)>().unwrap();
        assert_eq!((lo, hi), (1, 10), "lookahead 1 is strictly FIFO");
    }

    #[test]
    fn single_problem_completes_with_correct_answer() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(1000, 64));
        let outputs = drive_to_completion(&mut server, &[0, 1, 2]);
        assert_eq!(outputs, vec![1000 * 1001 / 2]);
        let stats = server.stats(0);
        assert_eq!(stats.completed_units, 16);
        assert!(server.all_complete());
    }

    #[test]
    fn multiple_problems_interleave_round_robin() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(100, 10));
        server.submit(sum_problem(200, 10));
        // Two consecutive requests should come from different problems.
        let a = match server.request_work(0, 0.0) {
            Assignment::Unit { problem, .. } => problem,
            _ => panic!("expected a unit"),
        };
        let b = match server.request_work(1, 0.0) {
            Assignment::Unit { problem, .. } => problem,
            _ => panic!("expected a unit"),
        };
        assert_ne!(a, b, "fair share must rotate across problems");
        let outputs = drive_to_completion(&mut server, &[0, 1, 2, 3]);
        let mut sorted = outputs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![100 * 101 / 2, 200 * 201 / 2]);
    }

    #[test]
    fn weighted_fair_share_interleaves_proportionally() {
        let mut server = Server::new(SchedulerConfig::default());
        let heavy = server.submit_with_weight(sum_problem(10_000, 10), 3);
        let light = server.submit_with_weight(sum_problem(10_000, 10), 1);
        // Sample the first 40 assignments; both problems have plenty of
        // units available, so the split must follow the 3:1 weights.
        let mut counts = [0usize; 2];
        for k in 0..40 {
            match server.request_work(k % 4, k as f64) {
                Assignment::Unit { problem, .. } => counts[problem] += 1,
                _ => panic!("work must be available"),
            }
        }
        assert_eq!(counts[heavy], 30, "weight-3 problem gets 3/4 of slots");
        assert_eq!(counts[light], 10);
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_is_rejected() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit_with_weight(sum_problem(10, 10), 0);
    }

    #[test]
    fn expired_lease_is_reissued_and_completed_by_another_client() {
        let mut server = Server::new(SchedulerConfig {
            lease_min_secs: 10.0,
            lease_factor: 1.0,
            ..Default::default()
        });
        server.submit(sum_problem(10, 100)); // single unit
                                             // Client 0 takes the unit and vanishes.
        let Assignment::Unit { .. } = server.request_work(0, 0.0) else {
            panic!("expected unit");
        };
        assert_eq!(server.check_timeouts(5.0), 0, "lease still valid");
        assert_eq!(server.check_timeouts(100.0), 1, "lease expired");
        // Client 1 picks up the reissued unit.
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(1, 101.0)
        else {
            panic!("expected reissued unit");
        };
        let result = algorithm.compute(&unit);
        assert!(server.submit_result(1, problem, result, 102.0));
        assert!(server.all_complete());
        assert_eq!(server.stats(0).reissued_units, 1);
    }

    #[test]
    fn duplicate_result_is_discarded() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(10, 5)); // two units
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(0, 0.0)
        else {
            panic!()
        };
        // Redundant copy of the same unit for client 1 would need the
        // end-game; emulate a duplicate by computing twice.
        let r1 = algorithm.compute(&unit);
        let r2 = algorithm.compute(&unit);
        assert!(server.submit_result(0, problem, r1, 1.0));
        assert!(
            !server.submit_result(0, problem, r2, 2.0),
            "duplicate discarded"
        );
        assert_eq!(server.stats(0).wasted_results, 1);
    }

    #[test]
    fn endgame_dispatches_redundant_copy() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(10, 100)); // single unit
        let Assignment::Unit { unit: u0, .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        // No fresh units left; client 1 should get a redundant copy.
        let Assignment::Unit {
            unit: u1,
            problem,
            algorithm,
        } = server.request_work(1, 1.0)
        else {
            panic!("expected redundant dispatch")
        };
        assert_eq!(u0.id, u1.id);
        assert_eq!(server.stats(0).redundant_dispatches, 1);
        // Client 2 must NOT get a third copy (max_redundancy = 2).
        assert!(matches!(server.request_work(2, 2.0), Assignment::Wait));
        // First result wins; the run completes.
        let r = algorithm.compute(&u1);
        assert!(server.submit_result(1, problem, r, 3.0));
        assert!(server.all_complete());
    }

    #[test]
    fn naive_config_never_dispatches_redundantly() {
        let mut server = Server::new(SchedulerConfig::naive());
        server.submit(sum_problem(10, 100));
        let Assignment::Unit { .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        assert!(matches!(server.request_work(1, 1.0), Assignment::Wait));
    }

    #[test]
    fn client_churn_reissues_orphaned_units() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(100, 50)); // two units
        let Assignment::Unit { unit: u0, .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        server.client_gone(0);
        // The orphaned unit must be reissued to the next requester.
        let Assignment::Unit { unit: u1, .. } = server.request_work(1, 1.0) else {
            panic!()
        };
        assert_eq!(u0.id, u1.id, "orphaned unit comes back first");
    }

    #[test]
    fn corrupted_result_cancels_lease_and_reissues() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(10, 100)); // single unit
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(0, 0.0)
        else {
            panic!()
        };
        assert!(server.result_corrupted(0, problem, unit.id, 1.0));
        assert_eq!(server.stats(0).corrupted_results, 1);
        // The unit must come back to the next requester, and the run
        // must still finish with the right answer.
        let Assignment::Unit { unit: u1, .. } = server.request_work(1, 2.0) else {
            panic!("corrupted unit must be reissued")
        };
        assert_eq!(u1.id, unit.id);
        let r = algorithm.compute(&u1);
        assert!(server.submit_result(1, problem, r, 3.0));
        assert!(server.all_complete());
        assert_eq!(
            server.take_output(0).unwrap().into_inner::<u64>(),
            10 * 11 / 2
        );
    }

    #[test]
    fn corruption_with_a_live_redundant_copy_keeps_the_other_lease() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(10, 100)); // single unit → end-game
        let Assignment::Unit { problem, unit, .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        let Assignment::Unit {
            unit: u1,
            algorithm,
            ..
        } = server.request_work(1, 1.0)
        else {
            panic!("expected redundant dispatch")
        };
        assert_eq!(unit.id, u1.id);
        // Client 0's copy corrupts; client 1's lease survives, so the
        // unit is NOT queued for reissue and client 1's result lands.
        assert!(server.result_corrupted(0, problem, unit.id, 2.0));
        let r = algorithm.compute(&u1);
        assert!(server.submit_result(1, problem, r, 3.0));
        assert!(server.all_complete());
        // Corruption after completion is a no-op.
        assert!(!server.result_corrupted(1, problem, unit.id, 4.0));
    }

    #[test]
    fn lease_backoff_is_clamped_after_many_reissues() {
        // Regression (satellite 3): before the clamp moved into the
        // scheduler, each expiry doubled the lease without an absolute
        // bound. Force hundreds of expiries of one unit and check the
        // lease length stays at the configured cap.
        let cfg = SchedulerConfig {
            lease_min_secs: 10.0,
            lease_factor: 1.0,
            max_lease_secs: 500.0,
            enable_redundant_dispatch: false,
            ..Default::default()
        };
        let mut server = Server::new(cfg);
        server.submit(sum_problem(10, 100)); // single unit
        let mut now = 0.0;
        for round in 0..300 {
            let Assignment::Unit { .. } = server.request_work(0, now) else {
                panic!("unit must be reissued every round (round {round})");
            };
            // Expire far in the future; the lease may never stretch
            // past now + max_lease_secs.
            now += 1e6;
            assert_eq!(server.check_timeouts(now), 1, "round {round}");
        }
        assert_eq!(server.stats(0).reissued_units, 300);
        // One more cycle to show the unit is still schedulable and the
        // deadline is finite: a fresh client completes it.
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(1, now)
        else {
            panic!()
        };
        let r = algorithm.compute(&unit);
        assert!(server.submit_result(1, problem, r, now + 1.0));
        assert!(server.all_complete());
    }

    #[test]
    fn timeout_scan_tracks_earliest_deadline() {
        // Satellite: `check_timeouts` must early-exit until the clock
        // reaches the earliest tracked lease deadline, then recompute
        // it after each scan. Jitter off so deadlines are exact.
        let mut server = Server::new(SchedulerConfig {
            lease_min_secs: 10.0,
            lease_factor: 1.0,
            lease_jitter_frac: 0.0,
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.submit(sum_problem(100, 50)); // two units
        assert_eq!(server.earliest_lease_deadline(), f64::INFINITY);
        let Assignment::Unit { .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        let Assignment::Unit { .. } = server.request_work(1, 5.0) else {
            panic!()
        };
        // Leases expire at 10 and 15.
        assert!((server.earliest_lease_deadline() - 10.0).abs() < 1e-9);
        // Before the earliest deadline the sweep is a no-op (early exit
        // leaves the tracked deadline untouched).
        assert_eq!(server.check_timeouts(3.0), 0);
        assert!((server.earliest_lease_deadline() - 10.0).abs() < 1e-9);
        // Past the first deadline: one expiry, tracker moves to 15.
        assert_eq!(server.check_timeouts(12.0), 1);
        assert!((server.earliest_lease_deadline() - 15.0).abs() < 1e-9);
        // Past the second: the other lease expires, nothing in flight.
        assert_eq!(server.check_timeouts(20.0), 1);
        assert_eq!(server.earliest_lease_deadline(), f64::INFINITY);
        assert_eq!(server.stats(0).reissued_units, 2);
    }

    #[test]
    fn replay_restores_pending_units_and_completes() {
        // Miniature recovery: issue two units, "crash" having completed
        // neither, then drive a fresh server through replay_issue +
        // restore_pending and finish the run.
        let mut first = Server::new(SchedulerConfig::default());
        first.submit(sum_problem(100, 50));
        let hint = first.scheduler().granularity_hint(0);
        let Assignment::Unit { unit: u0, .. } = first.request_work(0, 0.0) else {
            panic!()
        };
        let Assignment::Unit { unit: u1, .. } = first.request_work(1, 0.0) else {
            panic!()
        };

        let mut recovered = Server::new(SchedulerConfig::default());
        recovered.submit(sum_problem(100, 50));
        let r0 = recovered.replay_issue(0, u0.id, hint).expect("unit 0");
        let r1 = recovered.replay_issue(0, u1.id, hint).expect("unit 1");
        assert_eq!(r0.id, u0.id);
        // A diverged expectation is reported, not folded blindly.
        assert!(recovered.replay_issue(0, 999, hint).is_none());
        recovered.restore_pending(0, vec![r0, r1]);
        let outputs = drive_to_completion(&mut recovered, &[0, 1]);
        assert_eq!(outputs, vec![100 * 101 / 2]);
        assert!(recovered.all_complete());
    }

    #[test]
    fn finished_signal_after_all_outputs() {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(sum_problem(10, 10));
        drive_to_completion(&mut server, &[0]);
        assert!(matches!(server.request_work(0, 1e6), Assignment::Finished));
        assert!(server.completion_time(0).is_some());
    }

    fn quorum_server(cfg: SchedulerConfig, n: u64, chunk: u64) -> Server {
        let mut server = Server::new(cfg);
        server.submit(
            Problem::new("sum", Box::new(SumDm::new(n, chunk)), Arc::new(SumAlgo))
                .with_codec(Arc::new(RangeCodec)),
        );
        server
    }

    #[test]
    fn quorum_withholds_fold_until_byte_identical_agreement() {
        let mut server = quorum_server(
            SchedulerConfig {
                quorum_k: 3, // majority → 2 byte-identical votes
                enable_redundant_dispatch: false,
                ..Default::default()
            },
            10,
            100, // single unit
        );
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(0, 0.0)
        else {
            panic!()
        };
        let r0 = algorithm.compute(&unit);
        assert!(server.submit_result(0, problem, r0, 1.0), "vote recorded");
        assert!(!server.all_complete(), "one vote must not fold");
        assert_eq!(server.stats(0).completed_units, 0);
        // The voter cannot take the unit again (one vote per donor).
        assert!(matches!(server.request_work(0, 1.5), Assignment::Wait));
        // A second donor picks the unit up from the reissue queue and
        // its byte-identical result completes the quorum.
        let Assignment::Unit { unit: u1, .. } = server.request_work(1, 2.0) else {
            panic!("second donor must get the voting unit")
        };
        assert_eq!(u1.id, unit.id);
        let r1 = algorithm.compute(&u1);
        assert!(server.submit_result(1, problem, r1, 3.0));
        assert!(server.all_complete());
        assert_eq!(server.stats(0).completed_units, 1);
        assert_eq!(
            server.take_output(0).unwrap().into_inner::<u64>(),
            10 * 11 / 2
        );
    }

    #[test]
    fn byzantine_dissenter_is_outvoted_and_disputed() {
        let mut server = quorum_server(
            SchedulerConfig {
                quorum_k: 3,
                enable_redundant_dispatch: false,
                ..Default::default()
            },
            10,
            100,
        );
        let Assignment::Unit { problem, unit, .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        // Donor 0 lies: well-formed wire bytes, wrong answer.
        let lie = TaskResult {
            unit_id: unit.id,
            payload: Payload::new(999u64, 8),
        };
        assert!(server.submit_result(0, problem, lie, 1.0));
        // Two honest donors agree and outvote the lie.
        for (c, t) in [(1, 2.0), (2, 4.0)] {
            let Assignment::Unit {
                unit: u, algorithm, ..
            } = server.request_work(c, t)
            else {
                panic!("honest donor {c} must get the voting unit")
            };
            assert_eq!(u.id, unit.id);
            let r = algorithm.compute(&u);
            server.submit_result(c, problem, r, t + 1.0);
        }
        assert!(server.all_complete());
        assert_eq!(
            server.take_output(0).unwrap().into_inner::<u64>(),
            10 * 11 / 2,
            "the lie must never reach the combine path"
        );
        assert_eq!(server.stats(0).disputed_results, 1);
        let (agreements, disputes) = server.scheduler().reputation_counts(0);
        assert_eq!((agreements, disputes), (0, 1), "dissent resets agreement");
        assert_eq!(server.scheduler().reputation_counts(1).0, 1);
    }

    #[test]
    fn trusted_donor_graduates_to_single_issue() {
        let mut server = quorum_server(
            SchedulerConfig {
                quorum_k: 2,
                reputation_threshold: 1,
                enable_redundant_dispatch: false,
                ..Default::default()
            },
            10,
            5, // two units
        );
        let Assignment::Unit { problem, unit, .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        // Cross-check top-up: the second donor gets the *same* unit in
        // parallel, before any fresh work, because the vote wants K
        // live executions.
        let Assignment::Unit {
            unit: u1,
            algorithm,
            ..
        } = server.request_work(1, 0.1)
        else {
            panic!()
        };
        assert_eq!(u1.id, unit.id, "cross-check precedes fresh work");
        let r0 = algorithm.compute(&unit);
        assert!(server.submit_result(0, problem, r0, 1.0));
        assert!(!server.all_complete());
        let r1 = algorithm.compute(&u1);
        assert!(server.submit_result(1, problem, r1, 2.0));
        assert_eq!(server.stats(0).completed_units, 1);
        assert!(server.scheduler().is_trusted(0), "promoted at threshold 1");
        assert!(server.scheduler().is_trusted(1));
        // A trusted donor's next unit folds directly from one copy.
        let Assignment::Unit {
            unit: u2,
            algorithm,
            ..
        } = server.request_work(0, 3.0)
        else {
            panic!()
        };
        assert_ne!(u2.id, unit.id);
        let r2 = algorithm.compute(&u2);
        assert!(server.submit_result(0, problem, r2, 4.0));
        assert!(server.all_complete());
        assert_eq!(
            server.stats(0).assignments,
            3,
            "no cross-check once trusted"
        );
        assert_eq!(
            server.take_output(0).unwrap().into_inner::<u64>(),
            10 * 11 / 2
        );
    }

    #[test]
    fn restored_votes_never_fold_without_a_live_result() {
        let mut server = quorum_server(
            SchedulerConfig {
                quorum_k: 3,
                enable_redundant_dispatch: false,
                ..Default::default()
            },
            10,
            100,
        );
        // Recover the single unit as pending with a full set of
        // checkpointed votes; the cap must leave the quorum one short.
        let hint = server.scheduler().granularity_hint(0);
        let unit = server.replay_issue(0, 0, hint).expect("unit 0");
        let uid = unit.id;
        server.restore_pending(0, vec![unit]);
        let encoded = {
            let mut w = crate::codec::ByteWriter::new();
            w.u64(55);
            w.into_bytes()
        };
        server.restore_votes(
            0,
            uid,
            2,
            &[(7, encoded.clone()), (8, encoded.clone()), (9, encoded)],
        );
        assert!(!server.all_complete(), "restored votes alone never fold");
        // A live recomputation completes the vote exactly once.
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(0, 1.0)
        else {
            panic!("restored unit must be reissued")
        };
        assert_eq!(unit.id, uid);
        let r = algorithm.compute(&unit);
        assert!(server.submit_result(0, problem, r, 2.0));
        assert!(server.all_complete());
        assert_eq!(server.stats(0).completed_units, 1);
        assert_eq!(
            server.take_output(0).unwrap().into_inner::<u64>(),
            10 * 11 / 2
        );
    }

    #[test]
    fn speculative_reissue_extends_past_the_redundancy_cap() {
        let mut server = Server::new(SchedulerConfig {
            enable_speculative_reissue: true,
            speculative_max_copies: 3,
            ..Default::default()
        });
        server.submit(sum_problem(10, 100)); // single unit → end-game
        let Assignment::Unit { unit: u0, .. } = server.request_work(0, 0.0) else {
            panic!()
        };
        // Copy 2 is plain end-game redundancy (max_redundancy = 2)...
        let Assignment::Unit { unit: u1, .. } = server.request_work(1, 1.0) else {
            panic!()
        };
        // ...copy 3 is speculative, and copy 4 is refused.
        let Assignment::Unit {
            unit: u2,
            problem,
            algorithm,
        } = server.request_work(2, 2.0)
        else {
            panic!("speculation must hand out a third copy")
        };
        assert!(matches!(server.request_work(3, 3.0), Assignment::Wait));
        assert_eq!(u0.id, u1.id);
        assert_eq!(u0.id, u2.id);
        let r = algorithm.compute(&u2);
        assert!(server.submit_result(2, problem, r, 4.0));
        assert!(server.all_complete());
    }

    #[test]
    fn health_detector_flags_straggler_and_rescues_its_unit() {
        let mut server = Server::new(SchedulerConfig {
            enable_health_detector: true,
            health_min_observations: 3,
            enable_redundant_dispatch: false,
            enable_dynamic_granularity: false,
            enable_adaptive: false, // keep predicted time fixed at the prior
            ..Default::default()
        });
        server.submit(sum_problem(1000, 50)); // 20 units
        let mut now = 0.0;
        // Donor 0 completes three units at exactly the predicted pace
        // (prior 1e7 ops/s, 50 ops → 5e-6 s predicted; use that value).
        let predicted = 50.0 / 1.0e7;
        for _ in 0..3 {
            let Assignment::Unit {
                problem,
                unit,
                algorithm,
            } = server.request_work(0, now)
            else {
                panic!()
            };
            let r = algorithm.compute(&unit);
            now += predicted;
            assert!(server.submit_result(0, problem, r, now));
            now += 1.0;
        }
        assert!(!server.scheduler().is_health_flagged(0));
        // Now donor 0 turns into a 10× straggler: two slow results push
        // the fast EWMA (alpha 0.5) past 3× the frozen-slow baseline.
        for _ in 0..2 {
            let Assignment::Unit {
                problem,
                unit,
                algorithm,
            } = server.request_work(0, now)
            else {
                panic!()
            };
            let r = algorithm.compute(&unit);
            now += predicted * 10.0;
            assert!(server.submit_result(0, problem, r, now));
            now += 1.0;
        }
        assert!(
            server.scheduler().is_health_flagged(0),
            "a 10x slowdown must flag within two observations"
        );
        assert_eq!(server.health().unwrap().flagged_clients(), vec![0]);
        // Donor 0 takes a unit and stalls; donor 1 (healthy, unknown)
        // must be handed a rescue copy of that exact unit before any
        // fresh work.
        let Assignment::Unit { unit: stalled, .. } = server.request_work(0, now) else {
            panic!()
        };
        let Assignment::Unit {
            unit: rescue,
            problem,
            algorithm,
        } = server.request_work(1, now + 0.1)
        else {
            panic!()
        };
        assert_eq!(
            rescue.id, stalled.id,
            "the flagged donor's unit is rescued before fresh work"
        );
        let r = algorithm.compute(&rescue);
        assert!(server.submit_result(1, problem, r, now + 0.2));
        // A second healthy donor gets fresh work, not another copy.
        let Assignment::Unit { unit: fresh, .. } = server.request_work(2, now + 0.3) else {
            panic!()
        };
        assert_ne!(fresh.id, stalled.id, "one rescue copy per unit");
    }

    #[test]
    fn detector_off_never_flags_or_rescues() {
        let mut server = Server::new(SchedulerConfig {
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.submit(sum_problem(1000, 50));
        assert!(server.health().is_none());
        let mut now = 0.0;
        for _ in 0..6 {
            let Assignment::Unit {
                problem,
                unit,
                algorithm,
            } = server.request_work(0, now)
            else {
                panic!()
            };
            let r = algorithm.compute(&unit);
            now += 1000.0; // absurdly slow, but nothing watches
            server.submit_result(0, problem, r, now);
        }
        assert!(!server.scheduler().is_health_flagged(0));
    }

    #[test]
    fn status_snapshot_reports_donors_problems_and_round_trips() {
        let mut server = Server::new(SchedulerConfig {
            enable_health_detector: true,
            ..Default::default()
        });
        server.submit(sum_problem(100, 10));
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(3, 0.0)
        else {
            panic!()
        };
        let Assignment::Unit { .. } = server.request_work(5, 0.5) else {
            panic!()
        };
        let r = algorithm.compute(&unit);
        assert!(server.submit_result(3, problem, r, 1.0));

        let snap = server.status_snapshot(2.0);
        assert_eq!(snap.now, 2.0);
        let ids: Vec<ClientId> = snap.donors.iter().map(|d| d.client).collect();
        assert_eq!(ids, vec![3, 5], "sorted union of known donors");
        let d3 = &snap.donors[0];
        assert_eq!(d3.units_completed, 1);
        assert_eq!(d3.leases, 0, "its lease resolved with the result");
        assert!(!d3.flagged);
        assert!(d3.health_ratio > 0.0, "observed once by the detector");
        assert_eq!(snap.donors[1].leases, 1, "donor 5 still computing");
        assert_eq!(snap.problems.len(), 1);
        assert_eq!(snap.problems[0].name, "sum");
        assert_eq!(snap.problems[0].completed_units, 1);
        assert_eq!(snap.problems[0].in_flight, 1);
        assert!(!snap.problems[0].done);

        // Wire round trip is lossless and JSON is deterministic.
        let bytes = snap.to_wire_bytes();
        let back = StatusSnapshot::from_wire_bytes(&bytes).expect("decodes");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), snap.to_json());
        assert!(snap.to_json().starts_with("{\"now\":2,"));

        // Departure drops the donor from the next snapshot.
        server.client_gone(5);
        let after = server.status_snapshot(3.0);
        let ids: Vec<ClientId> = after.donors.iter().map(|d| d.client).collect();
        assert_eq!(ids, vec![3]);
    }

    #[test]
    fn staged_manager_wait_then_progress() {
        /// Two-stage manager: stage 2's unit is only available after
        /// stage 1's result arrives (a miniature DPRml barrier).
        struct Staged {
            stage: u8,
            in_flight: bool,
            acc: u64,
        }
        impl DataManager for Staged {
            fn next_unit(&mut self, _h: f64) -> Option<WorkUnit> {
                if self.in_flight || self.stage > 2 {
                    return None;
                }
                self.in_flight = true;
                Some(WorkUnit {
                    id: self.stage as u64,
                    payload: Payload::new(self.stage as u64, 8),
                    cost_ops: 1.0,
                })
            }
            fn accept_result(&mut self, r: TaskResult) {
                self.acc += r.payload.into_inner::<u64>();
                self.in_flight = false;
                self.stage += 1;
            }
            fn is_complete(&self) -> bool {
                self.stage > 2 && !self.in_flight
            }
            fn final_output(&mut self) -> Payload {
                Payload::new(self.acc, 8)
            }
        }
        struct Echo;
        impl Algorithm for Echo {
            fn compute(&self, unit: &WorkUnit) -> TaskResult {
                TaskResult {
                    unit_id: unit.id,
                    payload: Payload::new(*unit.payload.downcast_ref::<u64>().unwrap() * 10, 8),
                }
            }
        }
        let mut server = Server::new(SchedulerConfig {
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.submit(Problem::new(
            "staged",
            Box::new(Staged {
                stage: 1,
                in_flight: false,
                acc: 0,
            }),
            Arc::new(Echo),
        ));
        // Client 0 gets stage 1; client 1 must Wait (barrier).
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(0, 0.0)
        else {
            panic!()
        };
        assert!(matches!(server.request_work(1, 0.1), Assignment::Wait));
        let r = algorithm.compute(&unit);
        server.submit_result(0, problem, r, 1.0);
        // Stage 2 now available.
        let Assignment::Unit {
            problem,
            unit,
            algorithm,
        } = server.request_work(1, 1.1)
        else {
            panic!("stage 2 must open after the barrier")
        };
        let r = algorithm.compute(&unit);
        server.submit_result(1, problem, r, 2.0);
        assert!(server.all_complete());
        assert_eq!(server.take_output(0).unwrap().into_inner::<u64>(), 30);
    }
}
