//! Streaming donor-health engine (the live ops plane's detector).
//!
//! Each accepted result yields one *normalized service-time*
//! observation for its donor: observed turnaround divided by the
//! turnaround the donor's estimated speed predicts (≈ 1.0 for a
//! machine behaving like its own track record, regardless of how fast
//! that track record is). The engine keeps two EWMAs per donor — a
//! fast one tracking recent behaviour and a slow baseline seeded at
//! the healthy prior — and flags a donor as a straggler when the
//! recent-over-baseline ratio crosses a threshold. Flags clear with
//! hysteresis once the ratio recovers.
//!
//! The design deliberately separates *slow* from *anomalous*: an
//! honest-but-slow machine has a high absolute service time but a
//! normalized ratio near 1.0 (its speed estimate already prices the
//! slowness in), so it is never flagged; a machine that suddenly takes
//! 10× its own predicted time is flagged within a few observations.
//! Folding@Home's operational lesson — monitor and adapt to donors
//! *while the run is live* — is exactly this loop: the scheduler
//! deprioritizes flagged donors for affinity placement and arms
//! speculative re-issue of the units they hold.
//!
//! Everything here is a pure function of the observation sequence: no
//! clocks, no randomness, so the detector is deterministic under the
//! sim backend and property-testable under a seed.

use crate::sched::ClientId;
use crate::telemetry::{Histogram, Telemetry};
use biodist_util::stats::Ewma;
use std::collections::BTreeMap;

/// Histogram bounds for normalized service-time ratios (dimensionless;
/// 1.0 = exactly as predicted).
pub const RATIO_BOUNDS: &[f64] = &[
    0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 50.0,
];

/// Detector tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// EWMA smoothing for the fast (recent-behaviour) estimate.
    pub alpha_fast: f64,
    /// EWMA smoothing for the slow baseline estimate.
    pub alpha_baseline: f64,
    /// Where the baseline starts before any observation (1.0 = "takes
    /// exactly as long as its speed predicts").
    pub baseline_prior: f64,
    /// Flag a donor when `fast / baseline` reaches this ratio.
    pub straggler_ratio: f64,
    /// Clear a flagged donor when the ratio falls back to this value
    /// (hysteresis: must be below `straggler_ratio`).
    pub clear_ratio: f64,
    /// Observations required before a donor may be flagged (guards
    /// against flagging on startup noise).
    pub min_observations: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            alpha_fast: 0.5,
            alpha_baseline: 0.05,
            baseline_prior: 1.0,
            straggler_ratio: 3.0,
            clear_ratio: 1.5,
            min_observations: 3,
        }
    }
}

/// A flag state change produced by [`HealthEngine::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthTransition {
    /// The donor just crossed the straggler threshold.
    Flagged {
        /// Recent-over-baseline ratio at the moment of flagging.
        ratio: f64,
    },
    /// A previously flagged donor recovered below the clear threshold.
    Cleared {
        /// Recent-over-baseline ratio at the moment of clearing.
        ratio: f64,
    },
}

#[derive(Debug, Clone)]
struct DonorHealth {
    fast: Ewma,
    baseline: f64,
    observations: u64,
    flagged: bool,
    hist: Histogram,
}

/// Per-donor streaming health state (see module docs).
#[derive(Debug)]
pub struct HealthEngine {
    cfg: HealthConfig,
    donors: BTreeMap<ClientId, DonorHealth>,
    pool: Histogram,
    flagged_total: u64,
    cleared_total: u64,
}

impl HealthEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: HealthConfig) -> Self {
        assert!(cfg.straggler_ratio > 1.0, "straggler ratio must exceed 1.0");
        assert!(
            cfg.clear_ratio < cfg.straggler_ratio,
            "clear ratio must sit below the straggler ratio (hysteresis)"
        );
        assert!(cfg.baseline_prior > 0.0);
        Self {
            cfg,
            donors: BTreeMap::new(),
            pool: Histogram::new(RATIO_BOUNDS),
            flagged_total: 0,
            cleared_total: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Feeds one normalized service-time observation (observed
    /// turnaround ÷ predicted turnaround) for `client` and returns the
    /// flag transition it caused, if any. Non-finite or non-positive
    /// observations are dropped — a poisoned latency must not poison
    /// the detector.
    pub fn observe(&mut self, client: ClientId, normalized: f64) -> Option<HealthTransition> {
        if !normalized.is_finite() || normalized <= 0.0 {
            return None;
        }
        let cfg = &self.cfg;
        let d = self.donors.entry(client).or_insert_with(|| DonorHealth {
            fast: Ewma::new(cfg.alpha_fast),
            baseline: cfg.baseline_prior,
            observations: 0,
            flagged: false,
            hist: Histogram::new(RATIO_BOUNDS),
        });
        d.observations += 1;
        let fast = d.fast.update(normalized);
        // The baseline freezes while the donor is flagged: a persistent
        // straggler must not teach the detector that stragglerhood is
        // normal and silently clear its own flag.
        if !d.flagged {
            d.baseline += cfg.alpha_baseline * (normalized - d.baseline);
        }
        d.hist.observe(normalized);
        self.pool.observe(normalized);
        let ratio = fast / d.baseline.max(f64::MIN_POSITIVE);
        if !d.flagged
            && d.observations >= u64::from(cfg.min_observations)
            && ratio >= cfg.straggler_ratio
        {
            d.flagged = true;
            self.flagged_total += 1;
            return Some(HealthTransition::Flagged { ratio });
        }
        if d.flagged && ratio <= cfg.clear_ratio {
            d.flagged = false;
            self.cleared_total += 1;
            return Some(HealthTransition::Cleared { ratio });
        }
        None
    }

    /// Whether `client` is currently flagged.
    pub fn is_flagged(&self, client: ClientId) -> bool {
        self.donors.get(&client).is_some_and(|d| d.flagged)
    }

    /// Currently flagged donors, sorted by id.
    pub fn flagged_clients(&self) -> Vec<ClientId> {
        self.donors
            .iter()
            .filter(|(_, d)| d.flagged)
            .map(|(&c, _)| c)
            .collect()
    }

    /// Number of currently flagged donors.
    pub fn flagged_count(&self) -> usize {
        self.donors.values().filter(|d| d.flagged).count()
    }

    /// Lifetime `(flagged, cleared)` transition counts.
    pub fn transition_counts(&self) -> (u64, u64) {
        (self.flagged_total, self.cleared_total)
    }

    /// `client`'s current recent-over-baseline ratio (`None` before the
    /// first observation).
    pub fn ratio(&self, client: ClientId) -> Option<f64> {
        let d = self.donors.get(&client)?;
        Some(d.fast.value()? / d.baseline.max(f64::MIN_POSITIVE))
    }

    /// Observations recorded for `client`.
    pub fn observations(&self, client: ClientId) -> u64 {
        self.donors.get(&client).map_or(0, |d| d.observations)
    }

    /// Drops all state for `client` (it left the pool; a rejoining id
    /// starts over unflagged — the lease/reissue machinery already
    /// covers a fresh donor misbehaving).
    pub fn forget(&mut self, client: ClientId) {
        self.donors.remove(&client);
    }

    /// Streaming quantile of the pool-wide normalized service-time
    /// distribution (`None` before any observation).
    pub fn pool_quantile(&self, q: f64) -> Option<f64> {
        self.pool.quantile(q)
    }

    /// Streaming quantile of one donor's normalized service times.
    pub fn donor_quantile(&self, client: ClientId, q: f64) -> Option<f64> {
        self.donors.get(&client)?.hist.quantile(q)
    }

    /// Publishes the engine's state as `health.*` metrics: flag
    /// counters, the pool p50/p95/p99, and a per-donor ratio gauge.
    pub fn export_metrics(&self, telemetry: &Telemetry) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.gauge_set("health.flagged_current", self.flagged_count() as f64);
        for q in [0.50, 0.95, 0.99] {
            if let Some(v) = self.pool_quantile(q) {
                telemetry.gauge_set(&format!("health.pool_p{:02}", (q * 100.0) as u32), v);
            }
        }
        for (&c, d) in &self.donors {
            if let Some(fast) = d.fast.value() {
                telemetry.gauge_set(
                    &format!("health.ratio.c{c}"),
                    fast / d.baseline.max(f64::MIN_POSITIVE),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_but_slow_donor_is_never_flagged() {
        // A slow machine whose speed estimate prices the slowness in
        // produces normalized observations near 1.0 forever.
        let mut h = HealthEngine::new(HealthConfig::default());
        for i in 0..200 {
            let wobble = 1.0 + 0.1 * ((i % 7) as f64 - 3.0) / 3.0;
            assert_eq!(h.observe(5, wobble), None, "observation {i}");
        }
        assert!(!h.is_flagged(5));
        assert_eq!(h.transition_counts(), (0, 0));
    }

    #[test]
    fn sudden_straggler_is_flagged_then_clears_with_hysteresis() {
        let mut h = HealthEngine::new(HealthConfig::default());
        for _ in 0..10 {
            assert_eq!(h.observe(1, 1.0), None);
        }
        // 10× slowdown: flagged within a few observations.
        let mut flagged_at = None;
        for i in 0..10 {
            if let Some(HealthTransition::Flagged { ratio }) = h.observe(1, 10.0) {
                assert!(ratio >= 3.0);
                flagged_at = Some(i);
                break;
            }
        }
        assert!(
            flagged_at.is_some_and(|i| i < 5),
            "10x straggler must be flagged quickly, got {flagged_at:?}"
        );
        assert!(h.is_flagged(1));
        assert_eq!(h.flagged_clients(), vec![1]);
        // Recovery: the ratio must fall below clear_ratio (1.5), not
        // merely below the flag threshold.
        let mut cleared = false;
        for _ in 0..20 {
            if let Some(HealthTransition::Cleared { ratio }) = h.observe(1, 1.0) {
                assert!(ratio <= 1.5);
                cleared = true;
                break;
            }
        }
        assert!(cleared, "recovered donor must clear");
        assert!(!h.is_flagged(1));
        assert_eq!(h.transition_counts(), (1, 1));
    }

    #[test]
    fn slow_from_the_start_counts_as_straggling() {
        // The baseline prior is 1.0: a donor whose very first
        // observations run 10× the predicted time diverges from the
        // prior, not from its own (nonexistent) history.
        let mut h = HealthEngine::new(HealthConfig::default());
        let mut flagged = false;
        for _ in 0..6 {
            if matches!(h.observe(2, 10.0), Some(HealthTransition::Flagged { .. })) {
                flagged = true;
            }
        }
        assert!(flagged, "10x-from-birth donor must be flagged");
    }

    #[test]
    fn min_observations_guards_startup_noise() {
        let cfg = HealthConfig {
            min_observations: 5,
            ..Default::default()
        };
        let mut h = HealthEngine::new(cfg);
        for i in 0..4 {
            assert_eq!(h.observe(3, 10.0), None, "observation {i} is too early");
        }
        assert!(matches!(
            h.observe(3, 10.0),
            Some(HealthTransition::Flagged { .. })
        ));
    }

    #[test]
    fn poisoned_observations_are_dropped() {
        let mut h = HealthEngine::new(HealthConfig::default());
        for bad in [f64::NAN, f64::INFINITY, -1.0, 0.0] {
            assert_eq!(h.observe(4, bad), None);
        }
        assert_eq!(h.observations(4), 0);
        assert_eq!(h.pool_quantile(0.5), None);
    }

    #[test]
    fn quantiles_stream_from_the_fixed_buckets() {
        let mut h = HealthEngine::new(HealthConfig::default());
        for _ in 0..90 {
            h.observe(1, 1.0);
        }
        for _ in 0..10 {
            h.observe(2, 10.0);
        }
        let p50 = h.pool_quantile(0.5).expect("observed");
        let p99 = h.pool_quantile(0.99).expect("observed");
        assert!(p50 < 1.5, "median sits in the healthy buckets: {p50}");
        assert!(p99 > 5.0, "tail sees the straggler: {p99}");
        assert!(h.donor_quantile(2, 0.5).expect("donor 2") > 5.0);
        assert_eq!(h.donor_quantile(9, 0.5), None);
    }

    #[test]
    fn forget_resets_a_donor() {
        let mut h = HealthEngine::new(HealthConfig::default());
        for _ in 0..10 {
            h.observe(1, 10.0);
        }
        assert!(h.is_flagged(1));
        h.forget(1);
        assert!(!h.is_flagged(1));
        assert_eq!(h.observations(1), 0);
        assert_eq!(h.flagged_count(), 0);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn clear_ratio_must_sit_below_the_flag_ratio() {
        HealthEngine::new(HealthConfig {
            straggler_ratio: 2.0,
            clear_ratio: 2.5,
            ..Default::default()
        });
    }
}
