//! Run-time invariant auditing for chaos and fault-tolerance tests.
//!
//! [`audited`] wraps a [`Problem`]'s data manager so every unit issue
//! and every result fold is observed, and [`AuditHandle::verify_run`]
//! checks the scheduler-level invariants the fault-tolerance design
//! guarantees (DESIGN.md, fault model):
//!
//! 1. every issued work unit is combined into the data manager
//!    **exactly once** — redundant dispatch, reissue after churn, and
//!    duplicated deliveries never double-fold;
//! 2. no result is folded for a unit the manager never issued;
//! 3. every per-client EWMA speed estimate stays finite and positive
//!    (a NaN estimate would poison granularity and lease sizing);
//! 4. every granularity hint stays inside the configured
//!    `[min_unit_ops, max_unit_ops]` bounds.
//!
//! The fifth invariant — final output bit-identical to the fault-free
//! sequential reference — is checked by the test itself, since only the
//! application knows its reference (`dsearch::search_sequential`,
//! `phylo::search::stepwise_ml`).

use crate::problem::{DataManager, Payload, Problem, TaskResult, UnitId, WorkUnit};
use crate::server::Server;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct AuditState {
    issued: HashMap<UnitId, u32>,
    accepted: HashMap<UnitId, u32>,
    violations: Vec<String>,
}

/// Shared view into an audited problem's observations; query it after
/// the run completes.
#[derive(Debug, Clone)]
pub struct AuditHandle {
    state: Arc<Mutex<AuditState>>,
}

impl AuditHandle {
    /// Units the data manager issued (distinct ids; reissues of an
    /// expired unit reuse the id and are not counted again).
    pub fn units_issued(&self) -> u64 {
        self.state.lock().expect("audit lock").issued.len() as u64
    }

    /// Results folded into the data manager.
    pub fn units_accepted(&self) -> u64 {
        self.state.lock().expect("audit lock").accepted.len() as u64
    }

    /// Verifies every invariant against the finished run. Returns all
    /// violations rather than failing fast, so a chaos failure report
    /// shows the full picture.
    ///
    /// Assumes the wrapped data manager only declares completion once
    /// every issued unit's result is folded (true of every manager in
    /// this workspace).
    pub fn verify_run(&self, server: &Server) -> Result<(), Vec<String>> {
        let mut violations = {
            let st = self.state.lock().expect("audit lock");
            let mut v = st.violations.clone();
            for (&id, &n) in &st.accepted {
                if n != 1 {
                    v.push(format!(
                        "unit {id} combined {n} times (must be exactly once)"
                    ));
                }
            }
            for &id in st.issued.keys() {
                if !st.accepted.contains_key(&id) {
                    v.push(format!(
                        "unit {id} issued but its result was never combined"
                    ));
                }
            }
            v
        };
        violations.extend(server.scheduler().audit());
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

struct AuditedDm {
    inner: Box<dyn DataManager>,
    state: Arc<Mutex<AuditState>>,
}

impl DataManager for AuditedDm {
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit> {
        let unit = self.inner.next_unit(hint_ops)?;
        let mut st = self.state.lock().expect("audit lock");
        let n = st.issued.entry(unit.id).or_insert(0);
        *n += 1;
        if *n > 1 {
            let msg = format!("unit {} issued twice by the data manager", unit.id);
            st.violations.push(msg);
        }
        if !unit.cost_ops.is_finite() || unit.cost_ops < 0.0 {
            let msg = format!("unit {} has invalid cost_ops {}", unit.id, unit.cost_ops);
            st.violations.push(msg);
        }
        Some(unit)
    }

    fn accept_result(&mut self, result: TaskResult) {
        {
            let mut st = self.state.lock().expect("audit lock");
            if !st.issued.contains_key(&result.unit_id) {
                let msg = format!("result folded for unissued unit {}", result.unit_id);
                st.violations.push(msg);
            }
            *st.accepted.entry(result.unit_id).or_insert(0) += 1;
        }
        self.inner.accept_result(result);
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn final_output(&mut self) -> Payload {
        self.inner.final_output()
    }

    fn attach_telemetry(
        &mut self,
        telemetry: crate::telemetry::Telemetry,
        problem: crate::server::ProblemId,
    ) {
        self.inner.attach_telemetry(telemetry, problem);
    }
}

/// Wraps `problem` so every unit issue and result fold is audited.
/// The returned problem behaves identically; query the handle after the
/// run with [`AuditHandle::verify_run`].
pub fn audited(problem: Problem) -> (Problem, AuditHandle) {
    let state = Arc::new(Mutex::new(AuditState::default()));
    let handle = AuditHandle {
        state: state.clone(),
    };
    let wrapped = Problem {
        name: problem.name,
        data_manager: Box::new(AuditedDm {
            inner: problem.data_manager,
            state,
        }),
        algorithm: problem.algorithm,
        setup_bytes: problem.setup_bytes,
        codec: problem.codec,
    };
    (wrapped, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::sched::SchedulerConfig;
    use crate::server::Server;
    use crate::thread_backend::run_threaded;

    #[test]
    fn clean_run_passes_every_invariant() {
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 0.005,
            prior_ops_per_sec: 2e9,
            min_unit_ops: 1e4,
            ..Default::default()
        });
        let (problem, audit) = audited(integration_problem(300_000));
        let pid = server.submit(problem);
        let (mut server, _) = run_threaded(server, 4);
        let pi = server.take_output(pid).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8);
        audit
            .verify_run(&server)
            .expect("clean run must satisfy all invariants");
        assert!(audit.units_issued() > 0);
        assert_eq!(audit.units_issued(), audit.units_accepted());
    }

    #[test]
    fn double_fold_is_reported() {
        struct OneUnitDm {
            issued: bool,
            folds: u32,
        }
        impl DataManager for OneUnitDm {
            fn next_unit(&mut self, _h: f64) -> Option<WorkUnit> {
                if self.issued {
                    return None;
                }
                self.issued = true;
                Some(WorkUnit {
                    id: 0,
                    payload: Payload::new((), 0),
                    cost_ops: 1.0,
                })
            }
            fn accept_result(&mut self, _r: TaskResult) {
                self.folds += 1;
            }
            fn is_complete(&self) -> bool {
                self.folds >= 2
            }
            fn final_output(&mut self) -> Payload {
                Payload::new((), 0)
            }
        }
        struct Echo;
        impl crate::problem::Algorithm for Echo {
            fn compute(&self, unit: &WorkUnit) -> TaskResult {
                TaskResult {
                    unit_id: unit.id,
                    payload: Payload::new((), 0),
                }
            }
        }
        let (mut problem, audit) = audited(Problem::new(
            "double-fold",
            Box::new(OneUnitDm {
                issued: false,
                folds: 0,
            }),
            Arc::new(Echo),
        ));
        // Emulate a buggy server folding the same unit twice.
        let unit = problem.data_manager.next_unit(1.0).unwrap();
        problem.data_manager.accept_result(TaskResult {
            unit_id: unit.id,
            payload: Payload::new((), 0),
        });
        problem.data_manager.accept_result(TaskResult {
            unit_id: unit.id,
            payload: Payload::new((), 0),
        });
        let server = Server::new(SchedulerConfig::default());
        let err = audit
            .verify_run(&server)
            .expect_err("double fold must be caught");
        assert!(
            err.iter().any(|v| v.contains("combined 2 times")),
            "{err:?}"
        );
    }

    #[test]
    fn unissued_result_is_reported() {
        let (mut problem, audit) = audited(integration_problem(1000));
        problem.data_manager.accept_result(TaskResult {
            unit_id: 77,
            payload: Payload::new(0.0f64, 8),
        });
        let server = Server::new(SchedulerConfig::default());
        let err = audit
            .verify_run(&server)
            .expect_err("unissued result must be caught");
        assert!(
            err.iter().any(|v| v.contains("unissued unit 77")),
            "{err:?}"
        );
    }
}
