//! Simulated execution backend.
//!
//! Drives the same [`Server`] the threaded backend uses, but against
//! `biodist-gridsim`'s virtual clock, donor machines and shared server
//! link. Algorithms still *really execute* (so outputs are correct and
//! comparable to the sequential reference); virtual time is charged
//! from each unit's `cost_ops` and the executing machine's speed and
//! availability trace.
//!
//! Message flow per unit, mirroring the paper's RMI + socket split:
//!
//! ```text
//! client ──request (control msg)──▶ server        (latency-dominated)
//! client ◀──unit payload────────── server         (bytes / bandwidth, FIFO)
//! client computes                                  (machine trace)
//! client ──result payload────────▶ server         (bytes / bandwidth, FIFO)
//! client ──next request…
//! ```

use crate::fault::{DeliveryAction, FaultInjector, FaultPlan, PlanInterpreter};
use crate::net::cache::ChunkCache;
use crate::problem::{Algorithm, TaskResult, WorkUnit};
use crate::server::{Assignment, ProblemId, Server};
use biodist_gridsim::event::EventQueue;
use biodist_gridsim::machine::Machine;
use biodist_gridsim::network::{CampusNetwork, SharedLink};
use std::collections::VecDeque;
use std::sync::Arc;

/// Simulator tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// How long a client waits before re-polling after `Wait`, seconds.
    pub poll_interval_secs: f64,
    /// Period of the server's lease-timeout scan, seconds.
    pub timeout_check_secs: f64,
    /// Size of a control message (request/ack), bytes.
    pub control_bytes: u64,
    /// Hard cap on virtual time; exceeding it panics (a deadlocked
    /// configuration, not a recoverable state).
    pub max_virtual_secs: f64,
    /// Whether departing donors notify the server (graceful shutdown).
    /// Real cycle-scavenging donors usually vanish silently — the owner
    /// pulls the plug — and the server only discovers the loss when the
    /// unit's lease expires, so the default is `false`.
    pub announced_departures: bool,
    /// Capacity of each machine's modeled chunk cache in bytes. A
    /// unit's data chunks cross the link only when this cache misses
    /// (mirroring the TCP backend's donor-side `ChunkCache`).
    pub chunk_cache_bytes: u64,
    /// Pipelined dispatch depth: how many units a machine keeps in its
    /// pipeline (computing + prefetched + requested), so a prefetched
    /// unit's transfer overlaps the previous compute. 1 — the default,
    /// which keeps the pre-pipelining event timeline bit-identical —
    /// disables prefetch.
    pub pipeline_depth: usize,
    /// Number of chunk replica endpoints, each with its own 100 Mbit/s
    /// link. With replicas, a chunk miss routes to two rendezvous-scored
    /// candidates: a replica pulls the chunk from the origin once
    /// (charged to the server link) and serves every later request off
    /// its own link, cutting origin chunk egress from O(donors) to
    /// O(replicas). 0 — the default, which keeps the pre-replica event
    /// timeline bit-identical — serves every chunk from the origin.
    pub replicas: usize,
    /// Cadence at which each donor ships a snapshot of its local
    /// metrics registry to the server, merged under a `donor.c<id>.`
    /// prefix exactly like the TCP backend's `MetricsReport` frame.
    /// 0 — the default, which keeps the pre-shipping event timeline
    /// bit-identical — disables shipping.
    pub metrics_report_secs: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            poll_interval_secs: 5.0,
            timeout_check_secs: 30.0,
            control_bytes: 256,
            max_virtual_secs: 86_400.0 * 30.0,
            announced_departures: false,
            chunk_cache_bytes: 64 * 1024 * 1024,
            pipeline_depth: 1,
            replicas: 0,
            metrics_report_secs: 0.0,
        }
    }
}

/// Outcome of a simulated run.
#[derive(Debug)]
pub struct RunReport {
    /// Virtual time at which the *last* problem completed.
    pub makespan: f64,
    /// Per-problem `(name, completion time)` in submission order.
    pub problem_completion: Vec<(String, f64)>,
    /// Sum of completed units across problems.
    pub total_units: u64,
    /// Redundant end-game dispatches across problems.
    pub redundant_dispatches: u64,
    /// Units reissued after lease expiry / churn.
    pub reissued_units: u64,
    /// Results discarded as duplicates.
    pub wasted_results: u64,
    /// Results that arrived corrupted and were reissued.
    pub corrupted_results: u64,
    /// Bytes moved over the server link.
    pub bytes_transferred: u64,
    /// Mean seconds messages queued behind the shared link.
    pub mean_link_queue_wait: f64,
    /// Mean fraction of present time machines spent computing.
    pub mean_utilization: f64,
    /// Discrete events the simulator's main loop processed — the
    /// denominator for events-per-second throughput in scale sweeps.
    pub events_processed: u64,
}

// Per-machine events carry the machine's lifecycle epoch at scheduling
// time; a crash bumps the epoch, so events from the previous life
// (in-flight deliveries, compute completions, stale request loops) are
// discarded instead of resurrecting after the rejoin.
enum Ev {
    Join(usize),
    SetupDone(usize, u32),
    RequestArrived(usize, u32),
    UnitDelivered {
        machine: usize,
        epoch: u32,
        problem: ProblemId,
        unit: Arc<WorkUnit>,
        algorithm: Arc<dyn Algorithm>,
        // True when this is a prefetched unit re-entering from the
        // machine's pipeline queue: the `unit_delivered` trace event
        // already fired at its real arrival and must not repeat.
        requeued: bool,
    },
    // Carries the unit + algorithm so a Duplicate delivery fault can
    // materialise the second copy (results are not clonable).
    ComputeDone {
        machine: usize,
        epoch: u32,
        problem: ProblemId,
        result: TaskResult,
        unit: Arc<WorkUnit>,
        algorithm: Arc<dyn Algorithm>,
    },
    // A deferred re-poll after `Assignment::Wait` or a dropped result.
    // The control-message transfer is charged when this fires, not
    // when it is scheduled: `SharedLink` serialises transfers in call
    // order, so pre-charging a future retry would make earlier
    // transfers queue behind it.
    PollRetry(usize, u32),
    // Periodic donor-metrics shipping (when `metrics_report_secs` > 0).
    MetricsReport(usize, u32),
    Leave(usize),
    Crash {
        machine: usize,
        down_secs: f64,
    },
    TimeoutCheck,
}

/// Runs a server against a simulated machine pool.
pub struct SimRunner {
    server: Server,
    machines: Vec<Machine>,
    network: CampusNetwork,
    cfg: SimConfig,
    plan: FaultPlan,
}

impl SimRunner {
    /// Creates a runner with a single shared link. Problems must
    /// already be submitted to `server`.
    pub fn new(server: Server, machines: Vec<Machine>, link: SharedLink, cfg: SimConfig) -> Self {
        let network = CampusNetwork::single_link(link, machines.len());
        Self::with_network(server, machines, network, cfg)
    }

    /// Creates a runner over a full campus topology (per-location
    /// uplinks + server link).
    pub fn with_network(
        server: Server,
        machines: Vec<Machine>,
        network: CampusNetwork,
        cfg: SimConfig,
    ) -> Self {
        assert!(!machines.is_empty(), "need at least one machine");
        assert!(server.problem_count() > 0, "no problems submitted");
        Self {
            server,
            machines,
            network,
            cfg,
            plan: FaultPlan::none(),
        }
    }

    /// Convenience constructor with the 100 Mbit/s link and defaults.
    pub fn with_defaults(server: Server, machines: Vec<Machine>) -> Self {
        Self::new(
            server,
            machines,
            SharedLink::hundred_mbit(),
            SimConfig::default(),
        )
    }

    /// Injects a [`FaultPlan`] into the run. Lifecycle faults become
    /// simulator events (a `LateJoin` overrides the machine's arrival
    /// with the later time, a `Depart` with the earlier departure);
    /// slowdowns scale the machine's compute model per unit; delivery
    /// faults mutate result messages; link faults degrade the shared
    /// server link.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Runs to completion, returning the report and the server (which
    /// holds problem outputs).
    pub fn run(mut self) -> (RunReport, Server) {
        let n = self.machines.len();
        let tel = self.server.telemetry();
        let plan = std::mem::replace(&mut self.plan, FaultPlan::none());
        let mut injector = PlanInterpreter::new(&plan, n);
        let mut events: EventQueue<Ev> = EventQueue::new();
        let mut alive = vec![false; n];
        let mut departed = vec![false; n];
        let mut epoch = vec![0u32; n];
        let mut busy_time = vec![0.0f64; n];
        // Joins (initial + crash rejoins) scheduled but not yet fired;
        // the all-donors-gone check must count them as future capacity.
        let mut scheduled_joins = 0usize;
        // Per-machine chunk caches: residue bytes cross the link only
        // on a miss, exactly like the TCP donors. A crash empties the
        // machine's cache (its memory is gone).
        let mut chunk_caches: Vec<ChunkCache> = (0..n)
            .map(|_| ChunkCache::new(self.cfg.chunk_cache_bytes))
            .collect();
        // Donor-local metrics registries, shipped to the server every
        // `metrics_report_secs` as *delta* snapshots (snapshot, then
        // reset) so the server's prefixed merge stays associative. A
        // crash discards the unshipped delta — the machine's memory is
        // gone, exactly like its chunk cache.
        let mut donor_metrics: Vec<crate::telemetry::MetricsRegistry> =
            (0..n).map(|_| Default::default()).collect();
        let shipping = self.cfg.metrics_report_secs > 0.0;
        // Replica tier: each endpoint has its own link and a lazily
        // filled content set. `ReplicaCrash`/`ReplicaStall` windows from
        // the fault plan make routed candidates unavailable; a stalled
        // replica is treated as a timed-out failover (the donor gives up
        // and moves on, as on the TCP backend — the stall itself is not
        // charged as delay).
        let n_replicas = self.cfg.replicas;
        let mut replica_links: Vec<SharedLink> = (0..n_replicas)
            .map(|_| SharedLink::hundred_mbit())
            .collect();
        let mut replica_synced: Vec<std::collections::HashSet<u64>> =
            (0..n_replicas).map(|_| Default::default()).collect();
        let replica_down: Vec<Vec<(f64, f64)>> = (0..n_replicas)
            .map(|r| {
                let mut w = plan.replica_crashes(r);
                w.extend(plan.replica_stalls(r));
                w
            })
            .collect();
        // Pipelining state: `load` counts units anywhere in a machine's
        // pipeline (requested + in delivery + prefetched + computing);
        // requests are only issued while it stays below
        // `pipeline_depth`, and prefetched units start computing the
        // moment the previous unit's result is away.
        type PrefetchedUnit = (ProblemId, Arc<WorkUnit>, Arc<dyn Algorithm>);
        let depth = self.cfg.pipeline_depth.max(1);
        let mut computing = vec![false; n];
        let mut load = vec![0usize; n];
        let mut prefetch: Vec<VecDeque<PrefetchedUnit>> = (0..n).map(|_| VecDeque::new()).collect();

        let total_setup: u64 = (0..self.server.problem_count())
            .map(|p| self.server.setup_bytes(p))
            .sum();

        for m in 0..n {
            let join_at = plan.join_time(m).map_or(self.machines[m].arrival, |t| {
                t.max(self.machines[m].arrival)
            });
            events.schedule(join_at, Ev::Join(m));
            scheduled_joins += 1;
            let leave_at = match (self.machines[m].departure, plan.departure_time(m)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            if let Some(d) = leave_at {
                events.schedule(d, Ev::Leave(m));
            }
            for (at, down_secs) in plan.crashes(m) {
                events.schedule(
                    at,
                    Ev::Crash {
                        machine: m,
                        down_secs,
                    },
                );
            }
        }
        events.schedule(self.cfg.timeout_check_secs, Ev::TimeoutCheck);

        let debug = std::env::var("BIODIST_SIM_DEBUG").is_ok();
        let mut events_processed = 0u64;
        while let Some((now, ev)) = events.pop() {
            events_processed += 1;
            if debug {
                let tag = match &ev {
                    Ev::Join(m) => format!("join {m}"),
                    Ev::SetupDone(m, e) => format!("setup {m} (epoch {e})"),
                    Ev::RequestArrived(m, e) => format!("req {m} (epoch {e})"),
                    Ev::UnitDelivered { machine, unit, .. } => {
                        format!("deliver {machine} unit {}", unit.id)
                    }
                    Ev::ComputeDone { machine, .. } => format!("compute-done {machine}"),
                    Ev::PollRetry(m, e) => format!("poll-retry {m} (epoch {e})"),
                    Ev::MetricsReport(m, e) => format!("metrics-report {m} (epoch {e})"),
                    Ev::Leave(m) => format!("leave {m}"),
                    Ev::Crash { machine, down_secs } => {
                        format!("crash {machine} (down {down_secs:.1}s)")
                    }
                    Ev::TimeoutCheck => "timeout-check".into(),
                };
                eprintln!("[sim {now:.3}] {tag}");
            }
            assert!(
                now <= self.cfg.max_virtual_secs,
                "simulation exceeded {} virtual seconds — deadlocked configuration?",
                self.cfg.max_virtual_secs
            );
            if self.server.all_complete() {
                break;
            }
            match ev {
                Ev::Join(m) => {
                    scheduled_joins -= 1;
                    if departed[m] {
                        // Permanently departed while down; never rejoins.
                        continue;
                    }
                    alive[m] = true;
                    computing[m] = false;
                    prefetch[m].clear();
                    load[m] = 1; // the setup request about to go out
                    tel.emit_at(
                        now,
                        crate::telemetry::EventKind::MachineJoined { client: m },
                    );
                    // Download algorithm code + problem data for every
                    // submitted problem (again, after a crash reboot),
                    // then start requesting work.
                    self.network
                        .set_server_degradation(injector.link_scale(now));
                    let done = self.network.transfer(m, now, total_setup);
                    events.schedule(done, Ev::SetupDone(m, epoch[m]));
                    if shipping {
                        events.schedule(
                            now + self.cfg.metrics_report_secs,
                            Ev::MetricsReport(m, epoch[m]),
                        );
                    }
                }
                Ev::SetupDone(m, e) | Ev::RequestArrived(m, e) => {
                    if !alive[m] || e != epoch[m] {
                        continue; // stale request loop from a past life
                    }
                    match self.server.request_work(m, now) {
                        Assignment::Unit {
                            problem,
                            unit,
                            algorithm,
                        } => {
                            // The unit itself is small (a range plus
                            // chunk digests); residue bytes only cross
                            // the link when the machine's chunk cache
                            // misses, and each served chunk feeds the
                            // scheduler's affinity map — exactly the
                            // TCP backend's story.
                            let mut bytes = unit.payload.wire_bytes() + self.cfg.control_bytes;
                            // Replica-served chunk transfers finish off
                            // the origin link's critical path; the unit
                            // is delivered when the slowest leg lands.
                            let mut replica_done = 0.0f64;
                            // Origin-served chunk fetches finish when
                            // the unit itself lands; their finish events
                            // are emitted once `delivered` is known.
                            let mut origin_fetches: Vec<u64> = Vec::new();
                            let needs = self.server.unit_chunk_needs(problem, &unit.payload);
                            if !needs.is_empty() {
                                let codec = self.server.codec(problem);
                                let mut served = Vec::new();
                                for need in &needs {
                                    if chunk_caches[m].get_verified(need.digest).is_some() {
                                        tel.counter_add("cache.hits", 1);
                                        donor_metrics[m].counter_add("cache.hits", 1);
                                        tel.emit_at(
                                            now,
                                            crate::telemetry::EventKind::CacheHit {
                                                client: m,
                                                digest: need.digest,
                                            },
                                        );
                                        continue;
                                    }
                                    tel.counter_add("cache.misses", 1);
                                    tel.counter_add("cache.bytes_fetched", need.bytes);
                                    donor_metrics[m].counter_add("cache.misses", 1);
                                    donor_metrics[m].counter_add("cache.bytes_fetched", need.bytes);
                                    tel.emit_at(
                                        now,
                                        crate::telemetry::EventKind::CacheMiss {
                                            client: m,
                                            digest: need.digest,
                                        },
                                    );
                                    tel.emit_at(
                                        now,
                                        crate::telemetry::EventKind::ChunkFetchStarted {
                                            client: m,
                                            digest: need.digest,
                                        },
                                    );
                                    let mut from_replica = false;
                                    if n_replicas > 0 {
                                        tel.counter_add("replica.fetches", 1);
                                        let order = crate::net::store::rendezvous_order(
                                            need.digest,
                                            m as u64,
                                            n_replicas,
                                        );
                                        for &ridx in order.iter().take(2) {
                                            if replica_down[ridx]
                                                .iter()
                                                .any(|&(s, e)| now >= s && now < e)
                                            {
                                                tel.counter_add("replica.failovers", 1);
                                                donor_metrics[m]
                                                    .counter_add("replica.failovers", 1);
                                                tel.emit_at(
                                                    now,
                                                    crate::telemetry::EventKind::ReplicaFailover {
                                                        client: m,
                                                        replica: ridx,
                                                    },
                                                );
                                                continue;
                                            }
                                            let mut start = now;
                                            if replica_synced[ridx].insert(need.digest) {
                                                // Pull-through: the origin
                                                // pays once per (replica,
                                                // digest), serially on the
                                                // delivery path.
                                                start = self.network.transfer(m, now, need.bytes);
                                                tel.counter_add("replica.syncs", 1);
                                                tel.counter_add("net.chunk_bytes_out", need.bytes);
                                                tel.counter_add("replica.bytes_origin", need.bytes);
                                            }
                                            let done =
                                                replica_links[ridx].transfer(start, need.bytes);
                                            replica_done = replica_done.max(done);
                                            tel.counter_add("replica.chunks_served", 1);
                                            tel.counter_add("replica.bytes_replica", need.bytes);
                                            tel.emit_at(
                                                done,
                                                crate::telemetry::EventKind::ChunkFetchFinished {
                                                    client: m,
                                                    digest: need.digest,
                                                    replica: true,
                                                },
                                            );
                                            from_replica = true;
                                            break;
                                        }
                                    }
                                    if !from_replica {
                                        // No replicas, or every routed
                                        // candidate down: origin serves.
                                        bytes += need.bytes;
                                        tel.counter_add("net.chunks_served", 1);
                                        tel.counter_add("net.chunk_bytes_out", need.bytes);
                                        origin_fetches.push(need.digest);
                                    }
                                    if let Some(chunk) =
                                        codec.as_ref().and_then(|c| c.encode_chunk(need.chunk).ok())
                                    {
                                        let before = chunk_caches[m].stats().evictions;
                                        chunk_caches[m].insert(need.digest, Arc::new(chunk));
                                        let evicted = chunk_caches[m].stats().evictions - before;
                                        if evicted > 0 {
                                            tel.counter_add("cache.evictions", evicted);
                                        }
                                    }
                                    served.push(need.digest);
                                }
                                if !served.is_empty() {
                                    self.server.note_client_chunks(m, &served);
                                }
                            }
                            self.network
                                .set_server_degradation(injector.link_scale(now));
                            let delivered = self.network.transfer(m, now, bytes).max(replica_done);
                            for digest in origin_fetches {
                                tel.emit_at(
                                    delivered,
                                    crate::telemetry::EventKind::ChunkFetchFinished {
                                        client: m,
                                        digest,
                                        replica: false,
                                    },
                                );
                            }
                            events.schedule(
                                delivered,
                                Ev::UnitDelivered {
                                    machine: m,
                                    epoch: e,
                                    problem,
                                    unit,
                                    algorithm,
                                    requeued: false,
                                },
                            );
                        }
                        Assignment::Wait => {
                            let retry = now + self.cfg.poll_interval_secs;
                            events.schedule(retry, Ev::PollRetry(m, e));
                        }
                        Assignment::Finished => {
                            load[m] = load[m].saturating_sub(1);
                        }
                    }
                }
                Ev::UnitDelivered {
                    machine: m,
                    epoch: e,
                    problem,
                    unit,
                    algorithm,
                    requeued,
                } => {
                    if !alive[m] || e != epoch[m] {
                        continue; // unit lost with the crashed machine
                    }
                    if !requeued {
                        tel.emit_at(
                            now,
                            crate::telemetry::EventKind::UnitDelivered {
                                problem,
                                unit: unit.id,
                                client: m,
                            },
                        );
                    }
                    if computing[m] {
                        // The machine is busy: this is a prefetched
                        // unit whose transfer overlapped the compute.
                        prefetch[m].push_back((problem, unit, algorithm));
                        continue;
                    }
                    computing[m] = true;
                    tel.emit_at(
                        now,
                        crate::telemetry::EventKind::ComputeStarted {
                            problem,
                            unit: unit.id,
                            client: m,
                        },
                    );
                    // Execute for real (correct output), charge virtual
                    // time from the cost model and the machine's trace.
                    // An active straggler window scales the unit's
                    // compute time (sampled once, at unit start).
                    let result = algorithm.compute(&unit);
                    let scale = injector.compute_scale(m, now);
                    self.machines[m].set_speed_scale(1.0 / scale);
                    let finish = self.machines[m].finish_time(now, unit.cost_ops);
                    busy_time[m] += finish - now;
                    donor_metrics[m].observe(
                        "compute.secs",
                        crate::telemetry::LATENCY_BOUNDS,
                        finish - now,
                    );
                    events.schedule(
                        finish,
                        Ev::ComputeDone {
                            machine: m,
                            epoch: e,
                            problem,
                            result,
                            unit,
                            algorithm,
                        },
                    );
                    // Pipelining: request the next unit while this one
                    // computes, so its transfer hides behind the work.
                    if load[m] < depth {
                        load[m] += 1;
                        let arrives = self.network.transfer(m, now, self.cfg.control_bytes);
                        events.schedule(arrives, Ev::RequestArrived(m, e));
                    }
                }
                Ev::ComputeDone {
                    machine: m,
                    epoch: e,
                    problem,
                    result,
                    unit,
                    algorithm,
                } => {
                    if !alive[m] || e != epoch[m] {
                        continue; // work lost with the departed machine
                    }
                    tel.emit_at(
                        now,
                        crate::telemetry::EventKind::ComputeFinished {
                            problem,
                            unit: unit.id,
                            client: m,
                        },
                    );
                    donor_metrics[m].counter_add("units_computed", 1);
                    computing[m] = false;
                    load[m] = load[m].saturating_sub(1);
                    self.network
                        .set_server_degradation(injector.link_scale(now));
                    // A Byzantine donor lies: flip the encoded payload
                    // bytes *before* the transport frames them, then
                    // decode the lie back — the CRC layer cannot catch
                    // it, only quorum compare can. A lie whose bytes no
                    // longer decode degrades to a corrupt delivery.
                    let mut result = result;
                    let mut action = injector.delivery_action(m, now);
                    if injector.wrong_result(m, now) {
                        tel.emit_at(
                            now,
                            crate::telemetry::EventKind::FaultInjected {
                                client: m,
                                action: "wrong_result".to_string(),
                            },
                        );
                        if let Some(codec) = self.server.codec(problem) {
                            if let Ok(mut bytes) = codec.encode_result(&result.payload) {
                                crate::fault::flip_result_bytes(&mut bytes, m);
                                match codec.decode_result(&bytes) {
                                    Ok(payload) => {
                                        result = crate::problem::TaskResult {
                                            unit_id: result.unit_id,
                                            payload,
                                        }
                                    }
                                    Err(_) => action = DeliveryAction::Corrupt,
                                }
                            }
                        }
                    }
                    match action {
                        DeliveryAction::Deliver => {
                            let bytes = result.payload.wire_bytes() + self.cfg.control_bytes;
                            let arrives = self.network.transfer(m, now, bytes);
                            // The result message doubles as the next
                            // work request.
                            self.server.submit_result(m, problem, result, arrives);
                            if load[m] < depth {
                                load[m] += 1;
                                events.schedule(arrives, Ev::RequestArrived(m, e));
                            }
                        }
                        DeliveryAction::Drop => {
                            tel.emit_at(
                                now,
                                crate::telemetry::EventKind::FaultInjected {
                                    client: m,
                                    action: "drop".to_string(),
                                },
                            );
                            // The message vanishes in transit; the lease
                            // must expire to recover the unit. The client
                            // re-polls after its usual interval.
                            if load[m] < depth {
                                load[m] += 1;
                                let retry = now + self.cfg.poll_interval_secs;
                                events.schedule(retry, Ev::PollRetry(m, e));
                            }
                        }
                        DeliveryAction::Duplicate => {
                            tel.emit_at(
                                now,
                                crate::telemetry::EventKind::FaultInjected {
                                    client: m,
                                    action: "duplicate".to_string(),
                                },
                            );
                            // Retransmission bug: the same result lands
                            // twice; the server must accept exactly one.
                            let bytes = result.payload.wire_bytes() + self.cfg.control_bytes;
                            let arrives = self.network.transfer(m, now, bytes);
                            let copy = algorithm.compute(&unit);
                            let second = self.network.transfer(m, arrives, bytes);
                            self.server.submit_result(m, problem, result, arrives);
                            self.server.submit_result(m, problem, copy, second);
                            if load[m] < depth {
                                load[m] += 1;
                                events.schedule(second, Ev::RequestArrived(m, e));
                            }
                        }
                        DeliveryAction::Corrupt => {
                            tel.emit_at(
                                now,
                                crate::telemetry::EventKind::FaultInjected {
                                    client: m,
                                    action: "corrupt".to_string(),
                                },
                            );
                            // The payload fails the transport checksum;
                            // the server cancels the lease and reissues.
                            let bytes = result.payload.wire_bytes() + self.cfg.control_bytes;
                            let arrives = self.network.transfer(m, now, bytes);
                            self.server
                                .result_corrupted(m, problem, result.unit_id, arrives);
                            if load[m] < depth {
                                load[m] += 1;
                                events.schedule(arrives, Ev::RequestArrived(m, e));
                            }
                        }
                    }
                    // A prefetched unit starts computing immediately —
                    // its transfer already overlapped the last compute.
                    if let Some((problem, unit, algorithm)) = prefetch[m].pop_front() {
                        events.schedule(
                            now,
                            Ev::UnitDelivered {
                                machine: m,
                                epoch: e,
                                problem,
                                unit,
                                algorithm,
                                requeued: true,
                            },
                        );
                    }
                }
                Ev::PollRetry(m, e) => {
                    if !alive[m] || e != epoch[m] {
                        continue; // retry loop from a past life
                    }
                    self.network
                        .set_server_degradation(injector.link_scale(now));
                    let arrives = self.network.transfer(m, now, self.cfg.control_bytes);
                    events.schedule(arrives, Ev::RequestArrived(m, e));
                }
                Ev::MetricsReport(m, e) => {
                    if !alive[m] || e != epoch[m] {
                        continue; // reporting loop from a past life
                    }
                    // Ship the delta since the last report: snapshot,
                    // reset, charge the encoded bytes to the shared
                    // link, merge under the donor prefix.
                    let local = std::mem::take(&mut donor_metrics[m]);
                    let snap = local.snapshot();
                    self.network
                        .set_server_degradation(injector.link_scale(now));
                    let bytes = snap.to_wire_bytes().len() as u64 + self.cfg.control_bytes;
                    let arrives = self.network.transfer(m, now, bytes);
                    tel.merge_snapshot_prefixed(&format!("donor.c{m}."), &snap);
                    tel.emit_at(
                        arrives,
                        crate::telemetry::EventKind::MetricsReported { client: m },
                    );
                    events.schedule(now + self.cfg.metrics_report_secs, Ev::MetricsReport(m, e));
                }
                Ev::Leave(m) => {
                    departed[m] = true;
                    if alive[m] {
                        alive[m] = false;
                        epoch[m] += 1;
                        computing[m] = false;
                        prefetch[m].clear();
                        load[m] = 0;
                        tel.emit_at(
                            now,
                            crate::telemetry::EventKind::MachineDeparted { client: m },
                        );
                        if self.cfg.announced_departures {
                            self.server.client_gone(m);
                        }
                    }
                    assert!(
                        alive.iter().any(|&a| a) || scheduled_joins > 0,
                        "simulation ended with incomplete problems (all donors gone)"
                    );
                }
                Ev::Crash {
                    machine: m,
                    down_secs,
                } => {
                    if !alive[m] || departed[m] {
                        continue; // already down or gone; nothing to lose
                    }
                    // Silent crash: in-flight work is lost (the epoch
                    // bump discards it) and the server only learns via
                    // lease expiry. The machine reboots with a cold
                    // chunk cache and rejoins.
                    alive[m] = false;
                    epoch[m] += 1;
                    computing[m] = false;
                    prefetch[m].clear();
                    load[m] = 0;
                    chunk_caches[m].clear();
                    donor_metrics[m] = Default::default();
                    tel.emit_at(
                        now,
                        crate::telemetry::EventKind::MachineCrashed {
                            client: m,
                            down_secs,
                        },
                    );
                    // The availability trace is generated forward-only
                    // and a discarded in-flight unit may already have
                    // sampled it past `now`; the reboot cannot rejoin
                    // before the trace's high-water mark.
                    let rejoin = (now + down_secs).max(self.machines[m].trace_time());
                    events.schedule(rejoin, Ev::Join(m));
                    scheduled_joins += 1;
                }
                Ev::TimeoutCheck => {
                    self.server.check_timeouts(now);
                    if !self.server.all_complete() {
                        events.schedule_in(self.cfg.timeout_check_secs, Ev::TimeoutCheck);
                    }
                }
            }
        }

        assert!(
            self.server.all_complete(),
            "simulation ended with incomplete problems (all donors gone?)"
        );

        let mut problem_completion = Vec::new();
        let (mut total_units, mut redundant, mut reissued, mut wasted, mut corrupted) =
            (0, 0, 0, 0, 0);
        let mut makespan = 0.0f64;
        for pid in 0..self.server.problem_count() {
            let t = self.server.completion_time(pid).expect("complete");
            makespan = makespan.max(t);
            problem_completion.push((self.server.problem_name(pid).to_string(), t));
            let s = self.server.stats(pid);
            total_units += s.completed_units;
            redundant += s.redundant_dispatches;
            reissued += s.reissued_units;
            wasted += s.wasted_results;
            corrupted += s.corrupted_results;
        }

        let mut util_sum = 0.0;
        let mut util_n = 0usize;
        for (machine, busy) in self.machines.iter().zip(&busy_time) {
            let end = machine.departure.unwrap_or(makespan).min(makespan);
            let present = end - machine.arrival;
            if present > 0.0 {
                util_sum += (busy / present).min(1.0);
                util_n += 1;
            }
        }

        if tel.is_enabled() {
            tel.gauge_set("sim.makespan_s", makespan);
            tel.gauge_set("sim.bytes_transferred", self.network.total_bytes() as f64);
            for (m, busy) in busy_time.iter().enumerate() {
                tel.gauge_set(&format!("sim.busy_s.c{m}"), *busy);
            }
            tel.flush();
        }

        let report = RunReport {
            makespan,
            problem_completion,
            total_units,
            redundant_dispatches: redundant,
            reissued_units: reissued,
            wasted_results: wasted,
            corrupted_results: corrupted,
            bytes_transferred: self.network.total_bytes(),
            mean_link_queue_wait: self.network.mean_server_queue_wait(),
            mean_utilization: if util_n == 0 {
                0.0
            } else {
                util_sum / util_n as f64
            },
            events_processed,
        };
        (report, self.server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::integration_problem;
    use crate::sched::SchedulerConfig;
    use biodist_gridsim::deployments::{heterogeneous_lab, homogeneous_lab};
    use biodist_gridsim::machine::{AvailabilityModel, Machine};

    fn dedicated_pool(n: usize, speed: f64) -> Vec<Machine> {
        (0..n)
            .map(|id| Machine::new(id, "ded", speed, AvailabilityModel::dedicated(), 5))
            .collect()
    }

    fn pi_server(points: u64) -> Server {
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 10.0,
            ..Default::default()
        });
        server.submit(integration_problem(points));
        server
    }

    #[test]
    fn simulated_run_produces_correct_output() {
        let server = pi_server(1_000_000);
        let (report, mut server) = SimRunner::with_defaults(server, dedicated_pool(4, 1e7)).run();
        let pi = server.take_output(0).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8, "got {pi}");
        assert!(report.makespan > 0.0);
        assert!(report.total_units > 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = || {
            let server = pi_server(500_000);
            let machines = homogeneous_lab(8, 11);
            let (report, _) = SimRunner::with_defaults(server, machines).run();
            (
                report.makespan,
                report.total_units,
                report.bytes_transferred,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn more_machines_reduce_makespan() {
        let mk = |n: usize| {
            let server = pi_server(20_000_000);
            let (report, _) = SimRunner::with_defaults(server, dedicated_pool(n, 1e7)).run();
            report.makespan
        };
        let t1 = mk(1);
        let t4 = mk(4);
        let t16 = mk(16);
        assert!(t4 < t1 * 0.4, "4 machines: {t4} vs {t1}");
        assert!(t16 < t4 * 0.5, "16 machines: {t16} vs {t4}");
        // Speedup cannot exceed machine count.
        assert!(t1 / t16 <= 16.0 + 1e-9);
    }

    #[test]
    fn faster_machines_finish_sooner() {
        let mk = |speed: f64| {
            let server = pi_server(5_000_000);
            let (report, _) = SimRunner::with_defaults(server, dedicated_pool(2, speed)).run();
            report.makespan
        };
        assert!(mk(2e7) < mk(1e7) * 0.7);
    }

    #[test]
    fn heterogeneous_pool_completes_correctly() {
        let server = pi_server(5_000_000);
        let machines = heterogeneous_lab(14, 3);
        let (report, mut server) = SimRunner::with_defaults(server, machines).run();
        let pi = server.take_output(0).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8);
        assert!(report.mean_utilization > 0.0);
    }

    #[test]
    fn departed_machine_does_not_stall_the_run() {
        let mut machines = dedicated_pool(3, 1e7);
        // Machine 0 leaves early, mid-computation.
        machines[0].departure = Some(30.0);
        let server = pi_server(10_000_000);
        let (report, mut server) = SimRunner::with_defaults(server, machines).run();
        let pi = server.take_output(0).unwrap().into_inner::<f64>();
        assert!(
            (pi - std::f64::consts::PI).abs() < 1e-8,
            "correct despite churn"
        );
        assert!(report.makespan.is_finite());
    }

    #[test]
    fn late_arrival_still_contributes() {
        let mut machines = dedicated_pool(2, 1e7);
        machines[1].arrival = 100.0;
        let server = pi_server(20_000_000);
        let (report, _) = SimRunner::with_defaults(server, machines).run();
        // Sanity: the run completes and the late machine reduced makespan
        // versus a single machine (2e9 ops total / 1e7 ops/s = 200 s solo
        // per... 20M points × 200 ops = 4e9 ops → 400 s solo).
        assert!(report.makespan < 400.0, "makespan {}", report.makespan);
    }

    #[test]
    fn announced_departures_recover_faster_than_silent_ones() {
        let run = |announced: bool| {
            // One big unit, no redundancy: the orphaned unit IS the
            // critical path, so the recovery latency shows directly.
            let mut machines = dedicated_pool(2, 1e6);
            machines[0].departure = Some(50.0);
            let mut server = Server::new(SchedulerConfig {
                enable_redundant_dispatch: false,
                ..Default::default()
            });
            server.submit(integration_problem(2_000_000)); // 4e8 ops, one unit
            let cfg = SimConfig {
                announced_departures: announced,
                ..Default::default()
            };
            let (report, mut server) = SimRunner::new(
                server,
                machines,
                biodist_gridsim::network::SharedLink::hundred_mbit(),
                cfg,
            )
            .run();
            let pi = server.take_output(0).unwrap().into_inner::<f64>();
            assert!((pi - std::f64::consts::PI).abs() < 1e-7);
            report.makespan
        };
        let announced = run(true);
        let silent = run(false);
        // A graceful shutdown reissues the orphaned unit immediately; a
        // silent one waits for the lease to expire and the next timeout
        // scan — at least the 120 s minimum lease.
        assert!(
            announced + 60.0 < silent,
            "announced {announced} should beat silent {silent} by the lease delay"
        );
    }

    #[test]
    fn crashed_machine_rejoins_and_the_run_stays_correct() {
        use crate::fault::{FaultKind, FaultPlan};
        let server = pi_server(10_000_000);
        let plan = FaultPlan::new(0)
            .with(15.0, 0, FaultKind::Crash { down_secs: 60.0 })
            .with(20.0, 1, FaultKind::Crash { down_secs: 30.0 });
        let (report, mut server) = SimRunner::with_defaults(server, dedicated_pool(3, 1e7))
            .with_faults(plan)
            .run();
        let pi = server.take_output(0).unwrap().into_inner::<f64>();
        assert!(
            (pi - std::f64::consts::PI).abs() < 1e-8,
            "correct despite crashes"
        );
        assert!(report.makespan.is_finite());
    }

    #[test]
    fn dropped_result_is_recovered_by_lease_expiry() {
        use crate::fault::{FaultKind, FaultPlan};
        // No redundant dispatch: lease expiry must be the only path
        // that recovers the dropped unit.
        let mk_server = || {
            let mut server = Server::new(SchedulerConfig {
                target_unit_secs: 10.0,
                enable_redundant_dispatch: false,
                ..Default::default()
            });
            server.submit(integration_problem(5_000_000));
            server
        };
        let clean = {
            let (report, _) = SimRunner::with_defaults(mk_server(), dedicated_pool(2, 1e7)).run();
            report.makespan
        };
        let plan = FaultPlan::new(0).with(1.0, 0, FaultKind::DropResult);
        let (report, mut server) = SimRunner::with_defaults(mk_server(), dedicated_pool(2, 1e7))
            .with_faults(plan)
            .run();
        let pi = server.take_output(0).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8);
        assert!(
            report.reissued_units >= 1,
            "the dropped unit must be reissued"
        );
        assert!(report.makespan > clean, "losing a result must cost time");
    }

    #[test]
    fn duplicate_and_corrupt_deliveries_are_handled() {
        use crate::fault::{FaultKind, FaultPlan};
        let plan = FaultPlan::new(0)
            .with(1.0, 0, FaultKind::DuplicateResult)
            .with(1.0, 1, FaultKind::CorruptResult);
        let (report, mut server) =
            SimRunner::with_defaults(pi_server(5_000_000), dedicated_pool(3, 1e7))
                .with_faults(plan)
                .run();
        let pi = server.take_output(0).unwrap().into_inner::<f64>();
        assert!((pi - std::f64::consts::PI).abs() < 1e-8);
        assert!(
            report.wasted_results >= 1,
            "duplicate copy must be discarded"
        );
        assert!(report.corrupted_results >= 1, "corruption must be detected");
    }

    #[test]
    fn straggler_slowdown_and_link_flap_cost_time_but_not_correctness() {
        use crate::fault::{FaultKind, FaultPlan};
        let run = |plan: FaultPlan| {
            let (report, mut server) =
                SimRunner::with_defaults(pi_server(5_000_000), dedicated_pool(2, 1e7))
                    .with_faults(plan)
                    .run();
            let pi = server.take_output(0).unwrap().into_inner::<f64>();
            assert!((pi - std::f64::consts::PI).abs() < 1e-8);
            report.makespan
        };
        let clean = run(FaultPlan::none());
        let slow = run(FaultPlan::new(0).with(
            0.0,
            0,
            FaultKind::Slowdown {
                factor: 8.0,
                duration_secs: 400.0,
            },
        ));
        assert!(slow > clean, "straggler {slow} must exceed clean {clean}");
        let flappy = run(FaultPlan::new(0).with(
            0.0,
            None,
            FaultKind::LinkDegrade {
                factor: 50.0,
                duration_secs: 400.0,
            },
        ));
        assert!(
            flappy > clean,
            "degraded link {flappy} must exceed clean {clean}"
        );
    }

    /// A miniature chunked problem: every unit needs the same 1 MiB
    /// data chunk, so the first delivery to a machine misses and every
    /// later one should hit its modeled chunk cache.
    mod chunky {
        use super::*;
        use crate::codec::{ByteReader, ByteWriter, ChunkNeed, WireCodec, WireError};
        use crate::net::cache::chunk_digest;
        use crate::problem::{DataManager, Payload, Problem, TaskResult};

        pub const CHUNK_BYTES: usize = 1 << 20;

        pub fn chunk_bytes() -> Vec<u8> {
            (0..CHUNK_BYTES).map(|i| (i % 251) as u8).collect()
        }

        struct Dm {
            issued: u64,
            units: u64,
            received: u64,
        }
        impl DataManager for Dm {
            fn next_unit(&mut self, _h: f64) -> Option<WorkUnit> {
                if self.issued >= self.units {
                    return None;
                }
                let id = self.issued;
                self.issued += 1;
                Some(WorkUnit {
                    id,
                    payload: Payload::new(id, 64),
                    cost_ops: 1e7,
                })
            }
            fn accept_result(&mut self, _r: TaskResult) {
                self.received += 1;
            }
            fn is_complete(&self) -> bool {
                self.received == self.units
            }
            fn final_output(&mut self) -> Payload {
                Payload::new(self.received, 8)
            }
        }

        struct Algo;
        impl Algorithm for Algo {
            fn compute(&self, u: &WorkUnit) -> TaskResult {
                TaskResult {
                    unit_id: u.id,
                    payload: Payload::new(u.id, 8),
                }
            }
        }

        struct Codec;
        impl WireCodec for Codec {
            fn encode_unit(&self, p: &Payload) -> Result<Vec<u8>, WireError> {
                let mut w = ByteWriter::new();
                w.u64(*p.downcast_ref::<u64>().unwrap());
                Ok(w.into_bytes())
            }
            fn decode_unit(&self, bytes: &[u8]) -> Result<Payload, WireError> {
                let mut r = ByteReader::new(bytes);
                let id = r.u64()?;
                r.finish()?;
                Ok(Payload::new(id, 64))
            }
            fn encode_result(&self, p: &Payload) -> Result<Vec<u8>, WireError> {
                let mut w = ByteWriter::new();
                w.u64(*p.downcast_ref::<u64>().unwrap());
                Ok(w.into_bytes())
            }
            fn decode_result(&self, bytes: &[u8]) -> Result<Payload, WireError> {
                let mut r = ByteReader::new(bytes);
                let id = r.u64()?;
                r.finish()?;
                Ok(Payload::new(id, 8))
            }
            fn unit_chunks(&self, _p: &Payload) -> Vec<ChunkNeed> {
                vec![ChunkNeed {
                    chunk: 0,
                    digest: chunk_digest(&chunk_bytes()),
                    bytes: CHUNK_BYTES as u64,
                }]
            }
            fn encode_chunk(&self, chunk: u64) -> Result<Vec<u8>, WireError> {
                if chunk == 0 {
                    Ok(chunk_bytes())
                } else {
                    Err(WireError::new(format!("no chunk {chunk}")))
                }
            }
        }

        pub fn problem(units: u64) -> Problem {
            Problem::new(
                "chunky",
                Box::new(Dm {
                    issued: 0,
                    units,
                    received: 0,
                }),
                Arc::new(Algo),
            )
            .with_codec(Arc::new(Codec))
        }
    }

    fn chunky_run(cache_bytes: u64, pipeline_depth: usize, units: u64) -> RunReport {
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 10.0,
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.submit(chunky::problem(units));
        let cfg = SimConfig {
            chunk_cache_bytes: cache_bytes,
            pipeline_depth,
            ..Default::default()
        };
        let (report, _) = SimRunner::new(
            server,
            dedicated_pool(1, 1e7),
            biodist_gridsim::network::SharedLink::hundred_mbit(),
            cfg,
        )
        .run();
        report
    }

    #[test]
    fn chunk_cache_eliminates_repeat_transfers() {
        // One machine, eight units all needing the same chunk: a warm
        // cache transfers it once; a zero-capacity cache re-fetches it
        // for every unit.
        let cached = chunky_run(64 * 1024 * 1024, 1, 8).bytes_transferred;
        let uncached = chunky_run(0, 1, 8).bytes_transferred;
        let chunk = chunky::CHUNK_BYTES as u64;
        assert!(
            uncached >= cached + 6 * chunk,
            "cached {cached} vs uncached {uncached}"
        );
    }

    fn chunky_pool_run(replicas: usize, donors: usize) -> (RunReport, crate::telemetry::Telemetry) {
        let telemetry = crate::telemetry::Telemetry::enabled();
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 10.0,
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.set_telemetry(telemetry.clone());
        server.submit(chunky::problem(4 * donors as u64));
        let cfg = SimConfig {
            chunk_cache_bytes: 0, // every unit misses: worst-case egress
            replicas,
            ..Default::default()
        };
        let (report, _) = SimRunner::new(
            server,
            dedicated_pool(donors, 1e7),
            biodist_gridsim::network::SharedLink::hundred_mbit(),
            cfg,
        )
        .run();
        (report, telemetry)
    }

    #[test]
    fn replica_tier_offloads_origin_chunk_egress() {
        // The acceptance ablation: equal donor count, zero-capacity
        // donor caches (worst case — every unit misses), 3 replicas vs
        // none. Without replicas the origin ships the 1 MiB chunk once
        // per unit; with replicas it ships it once per replica that
        // serves it, and the replicas absorb the rest.
        let (_, baseline) = chunky_pool_run(0, 10);
        let (_, replicated) = chunky_pool_run(3, 10);
        let origin_before = baseline.metrics_snapshot().counter("net.chunk_bytes_out");
        let snap = replicated.metrics_snapshot();
        let origin_after = snap.counter("net.chunk_bytes_out");
        assert!(
            origin_after * 10 <= origin_before * 4,
            "origin egress must drop ≥ 60%: {origin_before} -> {origin_after}"
        );
        assert!(snap.counter("replica.chunks_served") > 0);
        assert_eq!(
            snap.counter("replica.bytes_replica") + origin_after
                - snap.counter("replica.bytes_origin"),
            origin_before,
            "every missed chunk byte is served exactly once, somewhere"
        );
    }

    #[test]
    fn replica_routing_fails_over_to_origin_when_all_candidates_are_down() {
        use crate::fault::{FaultKind, FaultPlan};
        // Both routed candidates down for the whole run: every miss
        // falls back to the origin, and the output stays correct.
        let telemetry = crate::telemetry::Telemetry::enabled();
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 10.0,
            enable_redundant_dispatch: false,
            ..Default::default()
        });
        server.set_telemetry(telemetry.clone());
        server.submit(chunky::problem(8));
        let plan = FaultPlan::new(0)
            .with(0.0, 0, FaultKind::ReplicaCrash { down_secs: 1e9 })
            .with(0.0, 1, FaultKind::ReplicaStall { duration_secs: 1e9 });
        let cfg = SimConfig {
            chunk_cache_bytes: 0,
            replicas: 2,
            ..Default::default()
        };
        let (_, mut server) = SimRunner::new(
            server,
            dedicated_pool(2, 1e7),
            biodist_gridsim::network::SharedLink::hundred_mbit(),
            cfg,
        )
        .with_faults(plan)
        .run();
        let out = server.take_output(0).unwrap().into_inner::<u64>();
        assert_eq!(out, 8, "all units accepted despite the dead tier");
        let snap = telemetry.metrics_snapshot();
        assert!(snap.counter("replica.failovers") > 0);
        assert_eq!(snap.counter("replica.chunks_served"), 0);
        assert_eq!(
            snap.counter("net.chunk_bytes_out"),
            8 * chunky::CHUNK_BYTES as u64,
            "origin served every miss"
        );
    }

    #[test]
    fn pipelined_dispatch_overlaps_transfers_with_compute() {
        // Cache disabled so every unit pays a 1 MiB transfer; with a
        // queue depth of 2 that transfer hides behind the previous
        // compute instead of serialising with it.
        let serial = chunky_run(0, 1, 6).makespan;
        let pipelined = chunky_run(0, 2, 6).makespan;
        assert!(
            pipelined + 0.2 < serial,
            "pipelined {pipelined} must beat serial {serial}"
        );
    }

    #[test]
    fn sim_trace_carries_phase_chains_and_ships_donor_metrics() {
        use crate::telemetry::{phase_breakdowns, verify_spans, EventKind, Telemetry};
        let telemetry = Telemetry::enabled();
        let ring = telemetry.attach_ring(100_000);
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 10.0,
            ..Default::default()
        });
        server.set_telemetry(telemetry.clone());
        server.submit(integration_problem(20_000_000));
        let cfg = SimConfig {
            metrics_report_secs: 5.0,
            ..Default::default()
        };
        let (_, _) = SimRunner::new(
            server,
            dedicated_pool(4, 1e7),
            biodist_gridsim::network::SharedLink::hundred_mbit(),
            cfg,
        )
        .run();
        let events = ring.events();
        verify_spans(&events).expect("spans consistent");
        let (phases, _incomplete) = phase_breakdowns(&events);
        assert!(!phases.is_empty(), "no completed phase chains in trace");
        for p in &phases {
            assert!(p.transfer >= 0.0 && p.queue_wait >= 0.0);
            assert!(p.compute > 0.0, "compute phase must take time");
            assert!(p.combine >= 0.0);
        }
        let reports = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::MetricsReported { .. }))
            .count();
        assert!(reports > 0, "no metrics reports shipped");
        let snap = telemetry.metrics_snapshot();
        assert_eq!(snap.counter("telemetry.reports_received"), reports as u64);
        assert_eq!(snap.counter("telemetry.merge_errors"), 0);
        let donor_units: u64 = (0..4)
            .map(|m| snap.counter(&format!("donor.c{m}.units_computed")))
            .sum();
        assert!(
            donor_units > 0,
            "donor-prefixed counters must land in the merged registry"
        );
    }

    #[test]
    fn metrics_shipping_off_leaves_no_donor_counters() {
        let telemetry = crate::telemetry::Telemetry::enabled();
        let ring = telemetry.attach_ring(100_000);
        let mut server = pi_server(500_000);
        server.set_telemetry(telemetry.clone());
        let (_, _) = SimRunner::with_defaults(server, dedicated_pool(2, 1e7)).run();
        let snap = telemetry.metrics_snapshot();
        assert!(snap.counters.keys().all(|k| !k.starts_with("donor.")));
        assert_eq!(snap.counter("telemetry.reports_received"), 0);
        assert!(!ring
            .events()
            .iter()
            .any(|e| matches!(e.kind, crate::telemetry::EventKind::MetricsReported { .. })));
    }

    #[test]
    #[should_panic(expected = "incomplete problems")]
    fn all_machines_leaving_panics() {
        let mut machines = dedicated_pool(1, 1e4); // far too slow to finish
        machines[0].departure = Some(10.0);
        let server = pi_server(100_000_000);
        SimRunner::with_defaults(server, machines).run();
    }
}
