//! Regression test: a donor far slower than the scheduler's prior used
//! to livelock — its lease expired before its first result arrived, the
//! unit bounced back to the reissue queue, its (valid) result was
//! discarded as stale, and the cycle repeated forever. Fixed by (a)
//! accepting results for units sitting in the reissue queue and (b)
//! exponential lease backoff per expiry.

use biodist_core::builtin::integration_problem;
use biodist_core::{SchedulerConfig, Server, SimConfig, SimRunner};
use biodist_gridsim::machine::{AvailabilityModel, Machine};
use biodist_gridsim::network::SharedLink;

fn slow_pool(departure: Option<f64>) -> Vec<Machine> {
    // 10x slower than the scheduler's 1e7 ops/s prior.
    let mut machines: Vec<Machine> = (0..2)
        .map(|id| Machine::new(id, "slow", 1e6, AvailabilityModel::dedicated(), 5))
        .collect();
    machines[0].departure = departure;
    machines
}

#[test]
fn slow_donor_with_silent_departure_completes() {
    let mut server = Server::new(SchedulerConfig {
        enable_redundant_dispatch: false,
        ..Default::default()
    });
    let pid = server.submit(integration_problem(2_000_000)); // one 4e8-op unit
    let cfg = SimConfig {
        announced_departures: false,
        max_virtual_secs: 5_000.0, // the livelock used to blow past this
        ..Default::default()
    };
    let (report, mut server) = SimRunner::new(
        server,
        slow_pool(Some(50.0)),
        SharedLink::hundred_mbit(),
        cfg,
    )
    .run();
    let pi = server.take_output(pid).unwrap().into_inner::<f64>();
    assert!((pi - std::f64::consts::PI).abs() < 1e-7);
    // Lease expiry (~180 s scan) + one full 400 s computation.
    assert!(report.makespan < 700.0, "makespan {}", report.makespan);
}

#[test]
fn stale_lease_result_is_accepted_not_wasted() {
    // No churn at all: the slow donor keeps the unit past its lease; its
    // eventual result must be folded in, not discarded.
    let mut server = Server::new(SchedulerConfig {
        enable_redundant_dispatch: false,
        ..Default::default()
    });
    let pid = server.submit(integration_problem(2_000_000));
    let cfg = SimConfig {
        announced_departures: false,
        max_virtual_secs: 5_000.0,
        ..Default::default()
    };
    // Single slow machine: nothing else can compute the reissued copy.
    let machines = vec![Machine::new(
        0,
        "slow",
        1e6,
        AvailabilityModel::dedicated(),
        5,
    )];
    let (report, mut server) =
        SimRunner::new(server, machines, SharedLink::hundred_mbit(), cfg).run();
    let pi = server.take_output(pid).unwrap().into_inner::<f64>();
    assert!((pi - std::f64::consts::PI).abs() < 1e-7);
    // One computation: ~400 s (not 800+, which would mean the first
    // result was wasted and recomputed).
    assert!(report.makespan < 500.0, "makespan {}", report.makespan);
    assert_eq!(server.stats(pid).wasted_results, 0);
}
