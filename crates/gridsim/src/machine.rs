//! Donor-machine compute model.
//!
//! Each machine has a speed in abstract ops/second and a *semi-idle*
//! availability trace: donors are ordinary desktops whose owners use
//! them (paper §3 runs the client "as a low priority background
//! service"), so compute progresses only during idle periods. The trace
//! is an alternating renewal process with exponential idle/busy
//! sojourns, generated lazily and deterministically from the machine's
//! own derived RNG stream — inserting or removing a machine never
//! perturbs another machine's trace.

use biodist_util::rng::{Rng, Xoshiro256StarStar};

/// Two-state owner-activity model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityModel {
    /// Long-run fraction of time the machine is idle (donating cycles).
    pub idle_fraction: f64,
    /// Mean length of one idle period, in seconds.
    pub mean_idle_secs: f64,
}

impl AvailabilityModel {
    /// A dedicated machine (cluster node): always available.
    pub fn dedicated() -> Self {
        Self {
            idle_fraction: 1.0,
            mean_idle_secs: f64::INFINITY,
        }
    }

    /// A semi-idle desktop: idle `idle_fraction` of the time in periods
    /// averaging `mean_idle_secs`.
    pub fn semi_idle(idle_fraction: f64, mean_idle_secs: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&idle_fraction) && idle_fraction > 0.0,
            "idle fraction must be in (0, 1]"
        );
        assert!(mean_idle_secs > 0.0, "mean idle period must be positive");
        Self {
            idle_fraction,
            mean_idle_secs,
        }
    }

    fn mean_busy_secs(&self) -> f64 {
        // idle_fraction = mean_idle / (mean_idle + mean_busy).
        self.mean_idle_secs * (1.0 - self.idle_fraction) / self.idle_fraction
    }

    fn is_dedicated(&self) -> bool {
        self.idle_fraction >= 1.0
    }
}

/// One simulated donor machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Stable machine identifier.
    pub id: usize,
    /// Human-readable class name (e.g. `"PIII-1000"`).
    pub class_name: String,
    /// Compute speed in abstract ops per second while idle.
    pub speed: f64,
    /// Availability model.
    pub availability: AvailabilityModel,
    /// Campus location index (selects the uplink in
    /// [`crate::network::CampusNetwork`]; 0 for single-link setups).
    pub location: usize,
    /// Virtual time at which the machine joins the pool.
    pub arrival: f64,
    /// Virtual time at which the machine permanently leaves (`None` =
    /// stays forever). Work in flight at departure is lost — the
    /// scheduler's fault-tolerance path must reissue it.
    pub departure: Option<f64>,
    // Fault-injection hook: multiplies effective speed (straggler
    // slowdowns set it below 1). Orthogonal to the availability trace.
    speed_scale: f64,
    rng: Xoshiro256StarStar,
    // Lazily generated trace cursor: the machine is `state_idle` until
    // `state_until`, then flips.
    trace_at: f64,
    state_idle: bool,
    state_until: f64,
}

impl Machine {
    /// Creates a machine. `seed` should be the experiment's master seed;
    /// the machine derives its own independent stream from `seed` + `id`.
    pub fn new(
        id: usize,
        class_name: &str,
        speed: f64,
        availability: AvailabilityModel,
        seed: u64,
    ) -> Self {
        assert!(speed > 0.0, "machine speed must be positive");
        let mut rng = Xoshiro256StarStar::new(seed).derive(0x4D41_C000 + id as u64);
        // Start the trace in a random phase: idle with the long-run
        // probability, so an ensemble of machines is stationary at t=0.
        let state_idle = availability.is_dedicated() || rng.next_bool(availability.idle_fraction);
        let mut m = Self {
            id,
            class_name: class_name.to_string(),
            speed,
            availability,
            location: 0,
            arrival: 0.0,
            departure: None,
            speed_scale: 1.0,
            rng,
            trace_at: 0.0,
            state_idle,
            state_until: 0.0,
        };
        m.state_until = m.draw_period_end(0.0);
        m
    }

    fn draw_period_end(&mut self, from: f64) -> f64 {
        if self.availability.is_dedicated() {
            return f64::INFINITY;
        }
        let mean = if self.state_idle {
            self.availability.mean_idle_secs
        } else {
            self.availability.mean_busy_secs()
        };
        from + self.rng.next_exp(mean)
    }

    fn advance_trace_to(&mut self, t: f64) {
        assert!(
            t >= self.trace_at,
            "machine {} trace queried backwards in time ({t} < {})",
            self.id,
            self.trace_at
        );
        while self.state_until < t {
            let from = self.state_until;
            self.state_idle = !self.state_idle;
            self.state_until = self.draw_period_end(from);
        }
        self.trace_at = t;
    }

    /// Whether the machine is idle (donating) at time `t`.
    ///
    /// `t` must be non-decreasing across calls (traces are generated
    /// forward-only).
    pub fn is_idle_at(&mut self, t: f64) -> bool {
        self.advance_trace_to(t);
        self.state_idle
    }

    /// Computes when a work unit of `ops` abstract operations finishes
    /// if started at `start`, walking the availability trace: progress
    /// accrues only during idle periods, at `speed` ops/second.
    ///
    /// `start` must be non-decreasing across calls.
    pub fn finish_time(&mut self, start: f64, ops: f64) -> f64 {
        assert!(ops >= 0.0, "ops must be non-negative");
        self.advance_trace_to(start);
        if ops == 0.0 {
            return start;
        }
        let speed = self.speed * self.speed_scale;
        let mut remaining = ops;
        let mut t = start;
        loop {
            if self.state_idle {
                let window_end = self.state_until;
                let can_do = (window_end - t) * speed;
                if can_do >= remaining || window_end.is_infinite() {
                    let finish = t + remaining / speed;
                    self.advance_trace_to(finish);
                    return finish;
                }
                remaining -= can_do;
            }
            // Jump to the next state flip.
            let flip = self.state_until;
            self.state_idle = !self.state_idle;
            self.state_until = self.draw_period_end(flip);
            t = flip;
            self.trace_at = t;
        }
    }

    /// Fault-injection hook: scales the machine's effective speed for
    /// subsequent [`Machine::finish_time`] calls (a straggler slowdown
    /// of factor `f` sets `1 / f`). Sampled at unit start by the
    /// simulator; `1.0` restores full speed.
    pub fn set_speed_scale(&mut self, scale: f64) {
        assert!(
            scale.is_finite() && scale > 0.0,
            "speed scale must be positive"
        );
        self.speed_scale = scale;
    }

    /// High-water mark of the availability trace: the latest time the
    /// trace has been sampled to. Queries ([`Machine::finish_time`],
    /// [`Machine::is_idle_at`]) must not go earlier than this — the
    /// trace is generated forward-only. The simulator uses it to delay
    /// a crash-reboot rejoin past any discarded in-flight compute.
    pub fn trace_time(&self) -> f64 {
        self.trace_at
    }

    /// Effective long-run throughput in ops/second (speed × idleness).
    pub fn effective_speed(&self) -> f64 {
        self.speed * self.availability.idle_fraction
    }

    /// Whether the machine is in the pool at time `t`.
    pub fn is_present(&self, t: f64) -> bool {
        t >= self.arrival && self.departure.map(|d| t < d).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dedicated(speed: f64) -> Machine {
        Machine::new(0, "cluster", speed, AvailabilityModel::dedicated(), 1)
    }

    #[test]
    fn dedicated_machine_computes_at_full_speed() {
        let mut m = dedicated(100.0);
        assert_eq!(m.finish_time(0.0, 500.0), 5.0);
        assert_eq!(m.finish_time(5.0, 100.0), 6.0);
        assert!(m.is_idle_at(1000.0));
    }

    #[test]
    fn zero_ops_finish_immediately() {
        let mut m = dedicated(10.0);
        assert_eq!(m.finish_time(3.0, 0.0), 3.0);
    }

    #[test]
    fn semi_idle_machine_takes_longer_on_average() {
        // 50% idle: long jobs should take ≈2× the dedicated time.
        let mut total_ratio = 0.0;
        let n = 40;
        for seed in 0..n {
            let mut m = Machine::new(
                seed as usize,
                "desktop",
                100.0,
                AvailabilityModel::semi_idle(0.5, 30.0),
                777,
            );
            // 10_000 ops = 100 s of dedicated compute, spanning many
            // idle/busy periods of mean 30 s.
            let finish = m.finish_time(0.0, 10_000.0);
            total_ratio += finish / 100.0;
        }
        let mean_ratio = total_ratio / n as f64;
        assert!(
            (mean_ratio - 2.0).abs() < 0.3,
            "mean slowdown {mean_ratio} should be ≈2 for 50% idleness"
        );
    }

    #[test]
    fn finish_time_is_monotone_in_ops() {
        let mut a = Machine::new(3, "d", 50.0, AvailabilityModel::semi_idle(0.7, 10.0), 9);
        let mut b = a.clone();
        let fa = a.finish_time(0.0, 1_000.0);
        let fb = b.finish_time(0.0, 2_000.0);
        assert!(fb > fa);
    }

    #[test]
    fn traces_are_deterministic_per_seed_and_id() {
        let mk = || Machine::new(7, "d", 50.0, AvailabilityModel::semi_idle(0.6, 20.0), 42);
        let (mut a, mut b) = (mk(), mk());
        for i in 0..20 {
            let t = i as f64 * 13.7;
            assert_eq!(a.is_idle_at(t), b.is_idle_at(t));
        }
        let mut c = Machine::new(8, "d", 50.0, AvailabilityModel::semi_idle(0.6, 20.0), 42);
        // Continue forward in time (traces are forward-only).
        let same = (0..100)
            .filter(|&i| {
                let t = 300.0 + i as f64 * 7.3;
                a.is_idle_at(t) == c.is_idle_at(t)
            })
            .count();
        assert!(same < 100, "different ids must have different traces");
    }

    #[test]
    fn long_run_idle_fraction_matches_model() {
        let mut m = Machine::new(1, "d", 10.0, AvailabilityModel::semi_idle(0.8, 15.0), 5);
        let samples = 20_000;
        let idle = (0..samples)
            .filter(|&i| m.is_idle_at(i as f64 * 3.1))
            .count();
        let frac = idle as f64 / samples as f64;
        assert!((frac - 0.8).abs() < 0.03, "observed idle fraction {frac}");
    }

    #[test]
    fn presence_respects_arrival_and_departure() {
        let mut m = dedicated(1.0);
        m.arrival = 10.0;
        m.departure = Some(100.0);
        assert!(!m.is_present(5.0));
        assert!(m.is_present(10.0));
        assert!(m.is_present(99.9));
        assert!(!m.is_present(100.0));
    }

    #[test]
    #[should_panic(expected = "backwards in time")]
    fn trace_cannot_rewind() {
        let mut m = Machine::new(2, "d", 10.0, AvailabilityModel::semi_idle(0.5, 10.0), 3);
        m.is_idle_at(100.0);
        m.is_idle_at(50.0);
    }

    #[test]
    fn speed_scale_slows_and_restores_compute() {
        let mut m = dedicated(100.0);
        assert_eq!(m.finish_time(0.0, 500.0), 5.0);
        m.set_speed_scale(0.25); // 4× straggler slowdown
        assert_eq!(m.finish_time(5.0, 500.0), 25.0);
        m.set_speed_scale(1.0);
        assert_eq!(m.finish_time(25.0, 500.0), 30.0);
    }

    #[test]
    #[should_panic(expected = "speed scale must be positive")]
    fn non_positive_speed_scale_is_rejected() {
        dedicated(1.0).set_speed_scale(0.0);
    }

    #[test]
    fn effective_speed_scales_with_idleness() {
        let m = Machine::new(4, "d", 200.0, AvailabilityModel::semi_idle(0.25, 10.0), 8);
        assert!((m.effective_speed() - 50.0).abs() < 1e-12);
        assert_eq!(dedicated(80.0).effective_speed(), 80.0);
    }
}
