//! Ready-made machine pools matching the paper's deployments.
//!
//! Speeds are in abstract ops/second with the convention **PIII 1 GHz =
//! 10⁷ ops/s** and other classes scaled by clock rate. Absolute scale
//! cancels out of every speedup figure; only the ratios (and the
//! compute-to-communication ratio chosen by the applications' cost
//! models) matter.

use crate::machine::{AvailabilityModel, Machine};
use crate::network::{CampusNetwork, SharedLink};

/// A named machine class with its abstract speed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineClass {
    /// Class label, e.g. `"PIII-1000"`.
    pub name: &'static str,
    /// Abstract ops per second while idle.
    pub speed: f64,
}

/// Pentium II 300 MHz desktop.
pub const PII_300: MachineClass = MachineClass {
    name: "PII-300",
    speed: 3.0e6,
};
/// Pentium II 400 MHz desktop.
pub const PII_400: MachineClass = MachineClass {
    name: "PII-400",
    speed: 4.0e6,
};
/// Pentium III 500 MHz (also the server's CPU).
pub const PIII_500: MachineClass = MachineClass {
    name: "PIII-500",
    speed: 5.0e6,
};
/// Pentium III 733 MHz desktop.
pub const PIII_733: MachineClass = MachineClass {
    name: "PIII-733",
    speed: 7.33e6,
};
/// Pentium III 1 GHz — the Fig. 1 laboratory machine and cluster CPU.
pub const PIII_1000: MachineClass = MachineClass {
    name: "PIII-1000",
    speed: 1.0e7,
};
/// Pentium IV 1.8 GHz desktop.
pub const PIV_1800: MachineClass = MachineClass {
    name: "PIV-1800",
    speed: 1.8e7,
};
/// Pentium IV 2.4 GHz desktop.
pub const PIV_2400: MachineClass = MachineClass {
    name: "PIV-2400",
    speed: 2.4e7,
};

/// The availability profile used for laboratory desktops: idle 90% of
/// the time in ~3-minute stretches ("semi-idle", Fig. 1 caption —
/// owners touch machines in short bursts).
pub fn lab_availability() -> AvailabilityModel {
    AvailabilityModel::semi_idle(0.9, 180.0)
}

/// The Fig. 1 laboratory: `n` homogeneous semi-idle PIII 1 GHz machines
/// (the paper uses n = 83).
pub fn homogeneous_lab(n: usize, seed: u64) -> Vec<Machine> {
    (0..n)
        .map(|id| {
            Machine::new(
                id,
                PIII_1000.name,
                PIII_1000.speed,
                lab_availability(),
                seed,
            )
        })
        .collect()
}

/// A heterogeneous desktop pool cycling through the Pentium classes —
/// used by the granularity/scheduling ablations.
pub fn heterogeneous_lab(n: usize, seed: u64) -> Vec<Machine> {
    let classes = [
        PII_300, PII_400, PIII_500, PIII_733, PIII_1000, PIV_1800, PIV_2400,
    ];
    (0..n)
        .map(|id| {
            let class = classes[id % classes.len()];
            Machine::new(id, class.name, class.speed, lab_availability(), seed)
        })
        .collect()
}

/// The full campus deployment of §3: three laboratory locations of
/// mixed desktops (≈200 PCs, Pentium II–IV) plus a 32-node dual-PIII
/// 1 GHz cluster contributing 64 dedicated CPUs.
pub fn campus_deployment(seed: u64) -> Vec<Machine> {
    let mut machines = Vec::new();
    let mut id = 0;
    // Three locations with slightly different hardware generations.
    let locations: [&[MachineClass]; 3] = [
        &[PII_300, PII_400, PIII_500],
        &[PIII_500, PIII_733, PIII_1000],
        &[PIII_1000, PIV_1800, PIV_2400],
    ];
    let per_location = [70, 70, 60];
    for (loc, (classes, &count)) in locations.iter().zip(&per_location).enumerate() {
        for k in 0..count {
            let class = classes[k % classes.len()];
            let mut m = Machine::new(id, class.name, class.speed, lab_availability(), seed);
            m.location = loc;
            machines.push(m);
            id += 1;
        }
    }
    // Cluster: 32 dual-CPU nodes, dedicated, machine-room location 3.
    for _ in 0..64 {
        let mut m = Machine::new(
            id,
            "cluster-PIII-1000",
            PIII_1000.speed,
            AvailabilityModel::dedicated(),
            seed,
        );
        m.location = 3;
        machines.push(m);
        id += 1;
    }
    machines
}

/// The network topology matching [`campus_deployment`]: three
/// laboratory uplinks at 100 Mbit/s, a 1 Gbit/s machine-room uplink for
/// the cluster, all funnelling into the server's 100 Mbit/s link.
pub fn campus_network(machines: &[Machine]) -> CampusNetwork {
    let max_id = machines.iter().map(|m| m.id).max().unwrap_or(0);
    let mut mapping = vec![0usize; max_id + 1];
    for m in machines {
        mapping[m.id] = m.location;
    }
    CampusNetwork::new(
        SharedLink::hundred_mbit(),
        vec![
            SharedLink::hundred_mbit(),
            SharedLink::hundred_mbit(),
            SharedLink::hundred_mbit(),
            SharedLink::new(1e-4, 1e9 / 8.0),
        ],
        mapping,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_lab_is_uniform() {
        let lab = homogeneous_lab(83, 1);
        assert_eq!(lab.len(), 83);
        assert!(lab.iter().all(|m| m.speed == PIII_1000.speed));
        assert!(lab.iter().all(|m| m.class_name == "PIII-1000"));
        // Ids are unique and dense.
        let ids: Vec<usize> = lab.iter().map(|m| m.id).collect();
        assert_eq!(ids, (0..83).collect::<Vec<_>>());
    }

    #[test]
    fn heterogeneous_lab_mixes_classes() {
        let lab = heterogeneous_lab(21, 2);
        let distinct: std::collections::BTreeSet<&str> =
            lab.iter().map(|m| m.class_name.as_str()).collect();
        assert_eq!(distinct.len(), 7, "all seven classes present");
        let slowest = lab.iter().map(|m| m.speed).fold(f64::INFINITY, f64::min);
        let fastest = lab.iter().map(|m| m.speed).fold(0.0, f64::max);
        assert!(
            fastest / slowest >= 8.0,
            "8x spread as in PII-300..PIV-2400"
        );
    }

    #[test]
    fn campus_matches_paper_description() {
        let campus = campus_deployment(3);
        assert_eq!(campus.len(), 200 + 64);
        let dedicated = campus
            .iter()
            .filter(|m| m.availability == AvailabilityModel::dedicated())
            .count();
        assert_eq!(dedicated, 64, "32 dual-CPU cluster nodes");
        let desktops = campus.len() - dedicated;
        assert_eq!(desktops, 200);
    }

    #[test]
    fn machines_have_distinct_traces() {
        let mut lab = homogeneous_lab(10, 7);
        // Sample idleness at many points; machines must not be in lockstep.
        let mut signatures: Vec<Vec<bool>> = Vec::new();
        for m in &mut lab {
            signatures.push((0..50).map(|i| m.is_idle_at(i as f64 * 60.0)).collect());
        }
        let first = &signatures[0];
        assert!(
            signatures[1..].iter().any(|s| s != first),
            "traces must differ across machines"
        );
    }

    #[test]
    fn class_speeds_scale_with_clock() {
        const { assert!(PII_300.speed < PIII_500.speed) };
        const { assert!(PIII_500.speed < PIII_1000.speed) };
        const { assert!(PIII_1000.speed < PIV_2400.speed) };
        assert!((PIII_1000.speed / PII_300.speed - 10.0 / 3.0).abs() < 1e-9);
    }
}
