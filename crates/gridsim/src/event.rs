//! A stable priority queue over virtual time.
//!
//! Events fire in non-decreasing time order; ties fire in insertion
//! order (a monotone sequence number breaks them), which makes every
//! simulation replay bit-identically — the property the experiment
//! harnesses rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (then
        // first-inserted) entry is at the top.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A discrete-event queue with a virtual clock.
///
/// ```
/// use biodist_gridsim::event::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(2.0, "later");
/// q.schedule(1.0, "sooner");
/// assert_eq!(q.pop(), Some((1.0, "sooner")));
/// assert_eq!(q.now(), 1.0);
/// ```
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    now: f64,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with the clock at 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0.0,
            next_seq: 0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past or not finite — both indicate a
    /// logic error in the caller, not a recoverable condition.
    pub fn schedule(&mut self, at: f64, payload: T) {
        assert!(at.is_finite(), "event time must be finite");
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedules `payload` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: f64, payload: T) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.now + delay, payload);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.schedule(1.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.pop();
        assert_eq!(q.now(), 5.0);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(4.0, "later");
        q.pop();
        q.schedule_in(1.5, "after");
        assert_eq!(q.peek_time(), Some(5.5));
    }

    #[test]
    fn len_and_empty_track_content() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(5.0, ());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(10.0, 10);
        let (t, v) = q.pop().unwrap();
        assert_eq!((t, v), (1.0, 1));
        q.schedule(5.0, 5);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![2, 5, 10]);
    }
}
