//! # biodist-gridsim
//!
//! Deterministic discrete-event substrate standing in for the paper's
//! physical testbed (§3): ~200 desktop PCs of mixed Pentium classes
//! across three campus locations plus a 32-node dual-PIII cluster, all
//! reaching one Pentium III 500 MHz server over a 100 Mbit/s network.
//!
//! The crate supplies passive, composable pieces; the event loop that
//! drives them lives in `biodist-core`'s simulated backend:
//!
//! * [`event::EventQueue`] — a stable priority queue over virtual time.
//! * [`machine::Machine`] — per-donor compute model: speed in abstract
//!   ops/second plus a two-state *semi-idle* availability trace (owner
//!   activity pauses the donor), with optional arrival/departure churn.
//! * [`network::SharedLink`] — latency + bandwidth + FIFO queueing on
//!   the single server uplink (the contention source that bends the
//!   speedup curves at high processor counts).
//! * [`deployments`] — ready-made machine pools: the 83-machine
//!   homogeneous laboratory of Fig. 1 and the full campus deployment.

pub mod deployments;
pub mod event;
pub mod machine;
pub mod network;

pub use deployments::{campus_deployment, homogeneous_lab, MachineClass};
pub use event::EventQueue;
pub use machine::{AvailabilityModel, Machine};
pub use network::SharedLink;
