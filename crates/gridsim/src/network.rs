//! Network model: the single shared server uplink.
//!
//! The paper's deployment funnels every donor through "a 100 Mbit/s
//! network to a single server (Pentium III 500 MHz)" (§3), so the
//! server's link — not the LAN fabric — is the communication
//! bottleneck. [`SharedLink`] models it as a FIFO resource: each
//! transfer waits for the link, then occupies it for
//! `bytes / bandwidth` seconds, after a fixed per-message latency that
//! models RMI dispatch and protocol overhead. Control messages (the
//! paper's RMI calls) are small; bulk data (the paper's raw-socket file
//! transfers) is charged by size.

/// A FIFO-queued shared link.
#[derive(Debug, Clone)]
pub struct SharedLink {
    latency_secs: f64,
    bandwidth_bytes_per_sec: f64,
    // Fault-injection hook: ≥ 1 multiplies latency and serialisation
    // time (congestion, a flapping switch port). 1 = healthy.
    degradation: f64,
    busy_until: f64,
    total_bytes: u64,
    total_transfers: u64,
    total_queue_wait: f64,
}

impl SharedLink {
    /// Creates a link with the given one-way latency and bandwidth.
    pub fn new(latency_secs: f64, bandwidth_bytes_per_sec: f64) -> Self {
        assert!(latency_secs >= 0.0, "latency must be non-negative");
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        Self {
            latency_secs,
            bandwidth_bytes_per_sec,
            degradation: 1.0,
            busy_until: 0.0,
            total_bytes: 0,
            total_transfers: 0,
            total_queue_wait: 0.0,
        }
    }

    /// Fault-injection hook: degrades the link by `factor` ≥ 1 for
    /// subsequent transfers (latency and serialisation time both scale).
    /// `1.0` restores the healthy link.
    pub fn set_degradation(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "degradation factor must be ≥ 1"
        );
        self.degradation = factor;
    }

    /// The paper's testbed link: 100 Mbit/s switched Ethernet with ~1 ms
    /// effective request latency.
    pub fn hundred_mbit() -> Self {
        Self::new(1e-3, 100e6 / 8.0)
    }

    /// Schedules a transfer of `bytes` requested at time `now`; returns
    /// the completion time. Transfers are serialised FIFO in request
    /// order.
    ///
    /// `now` values must be non-decreasing across calls (event-ordered).
    pub fn transfer(&mut self, now: f64, bytes: u64) -> f64 {
        assert!(now.is_finite() && now >= 0.0, "bad transfer time {now}");
        let ready = now + self.latency_secs * self.degradation;
        let start = ready.max(self.busy_until);
        self.total_queue_wait += start - ready;
        let duration = bytes as f64 * self.degradation / self.bandwidth_bytes_per_sec;
        self.busy_until = start + duration;
        self.total_bytes += bytes;
        self.total_transfers += 1;
        self.busy_until
    }

    /// Total bytes moved so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of transfers performed.
    pub fn total_transfers(&self) -> u64 {
        self.total_transfers
    }

    /// Mean seconds transfers spent queued behind the link (a direct
    /// congestion indicator for the experiment reports).
    pub fn mean_queue_wait(&self) -> f64 {
        if self.total_transfers == 0 {
            0.0
        } else {
            self.total_queue_wait / self.total_transfers as f64
        }
    }

    /// Time at which the link next becomes free.
    pub fn busy_until(&self) -> f64 {
        self.busy_until
    }
}

/// A campus network: per-location shared uplinks feeding the single
/// server link.
///
/// The paper's deployment spans "3 locations" (§3); a transfer from a
/// donor traverses its location's uplink first and then queues on the
/// server link, so a busy laboratory slows its own machines before it
/// slows the rest of the campus. A single-location topology degrades to
/// exactly the plain [`SharedLink`] behaviour plus the location hop.
#[derive(Debug, Clone)]
pub struct CampusNetwork {
    server_link: SharedLink,
    location_links: Vec<SharedLink>,
    machine_location: Vec<usize>,
}

impl CampusNetwork {
    /// Single-location topology: every machine behind one (infinitely
    /// fast) location hop, so behaviour equals the bare server link.
    pub fn single_link(server_link: SharedLink, n_machines: usize) -> Self {
        Self {
            server_link,
            // Zero-latency, effectively infinite-bandwidth location hop.
            location_links: vec![SharedLink::new(0.0, 1e15)],
            machine_location: vec![0; n_machines],
        }
    }

    /// Full topology: `machine_location[id]` indexes `location_links`.
    ///
    /// # Panics
    /// Panics if any machine maps to a missing location.
    pub fn new(
        server_link: SharedLink,
        location_links: Vec<SharedLink>,
        machine_location: Vec<usize>,
    ) -> Self {
        assert!(!location_links.is_empty(), "need at least one location");
        assert!(
            machine_location.iter().all(|&l| l < location_links.len()),
            "machine mapped to a missing location"
        );
        Self {
            server_link,
            location_links,
            machine_location,
        }
    }

    /// Schedules a transfer for `machine` at time `now`: location uplink
    /// first, then the server link, each FIFO. Returns completion time.
    pub fn transfer(&mut self, machine: usize, now: f64, bytes: u64) -> f64 {
        let loc = self
            .machine_location
            .get(machine)
            .copied()
            .unwrap_or(0)
            .min(self.location_links.len() - 1);
        let at_backbone = self.location_links[loc].transfer(now, bytes);
        self.server_link.transfer(at_backbone, bytes)
    }

    /// Total bytes through the server link.
    pub fn total_bytes(&self) -> u64 {
        self.server_link.total_bytes()
    }

    /// Mean queue wait on the server link.
    pub fn mean_server_queue_wait(&self) -> f64 {
        self.server_link.mean_queue_wait()
    }

    /// Fault-injection hook: degrades the shared server link by
    /// `factor` ≥ 1 (see [`SharedLink::set_degradation`]).
    pub fn set_server_degradation(&mut self, factor: f64) {
        self.server_link.set_degradation(factor);
    }

    /// Mean queue wait per location uplink.
    pub fn location_queue_waits(&self) -> Vec<f64> {
        self.location_links
            .iter()
            .map(|l| l.mean_queue_wait())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_takes_latency_plus_serialisation() {
        let mut link = SharedLink::new(0.5, 1000.0);
        // 2000 bytes at 1000 B/s = 2 s, plus 0.5 s latency.
        assert_eq!(link.transfer(0.0, 2000), 2.5);
    }

    #[test]
    fn concurrent_requests_queue_fifo() {
        let mut link = SharedLink::new(0.0, 100.0);
        let a = link.transfer(0.0, 100); // 0..1
        let b = link.transfer(0.0, 100); // 1..2 (queued)
        let c = link.transfer(0.0, 100); // 2..3 (queued)
        assert_eq!((a, b, c), (1.0, 2.0, 3.0));
        assert!(link.mean_queue_wait() > 0.0);
    }

    #[test]
    fn idle_link_does_not_queue() {
        let mut link = SharedLink::new(0.1, 1000.0);
        let a = link.transfer(0.0, 500); // finishes 0.6
        let b = link.transfer(10.0, 500); // starts fresh: 10 + 0.1 + 0.5
        assert!((a - 0.6).abs() < 1e-12);
        assert!((b - 10.6).abs() < 1e-12);
        assert_eq!(link.mean_queue_wait(), 0.0);
    }

    #[test]
    fn zero_byte_control_message_costs_latency_only() {
        let mut link = SharedLink::new(0.001, 1e6);
        assert!((link.transfer(5.0, 0) - 5.001).abs() < 1e-12);
    }

    #[test]
    fn statistics_accumulate() {
        let mut link = SharedLink::new(0.0, 1000.0);
        link.transfer(0.0, 300);
        link.transfer(0.0, 700);
        assert_eq!(link.total_bytes(), 1000);
        assert_eq!(link.total_transfers(), 2);
    }

    #[test]
    fn hundred_mbit_moves_bytes_at_line_rate() {
        let mut link = SharedLink::hundred_mbit();
        // 12.5 MB at 12.5 MB/s ≈ 1 s.
        let t = link.transfer(0.0, 12_500_000);
        assert!((t - 1.001).abs() < 1e-9, "{t}");
    }

    #[test]
    fn degraded_link_slows_transfers_then_recovers() {
        let mut link = SharedLink::new(0.5, 1000.0);
        link.set_degradation(4.0);
        // Latency 0.5×4 = 2, serialisation 2000/1000×4 = 8.
        assert_eq!(link.transfer(0.0, 2000), 10.0);
        link.set_degradation(1.0);
        assert_eq!(link.transfer(20.0, 2000), 22.5);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn degradation_below_one_is_rejected() {
        SharedLink::new(0.0, 1.0).set_degradation(0.5);
    }

    #[test]
    fn campus_server_degradation_reaches_the_server_link() {
        let mut net = CampusNetwork::single_link(SharedLink::new(0.0, 1000.0), 2);
        let healthy = net.transfer(0, 0.0, 1000);
        assert!((healthy - 1.0).abs() < 1e-9);
        net.set_server_degradation(3.0);
        let degraded = net.transfer(1, 10.0, 1000);
        assert!((degraded - 13.0).abs() < 1e-9, "{degraded}");
    }

    #[test]
    fn single_link_campus_equals_bare_link() {
        let mut bare = SharedLink::new(0.01, 1000.0);
        let mut campus = CampusNetwork::single_link(SharedLink::new(0.01, 1000.0), 4);
        for (m, t) in [(0usize, 0.0), (1, 0.0), (2, 5.0), (3, 5.0)] {
            assert!((campus.transfer(m, t, 500) - bare.transfer(t, 500)).abs() < 1e-9);
        }
    }

    #[test]
    fn location_uplinks_serialise_local_traffic_first() {
        // Two locations, slow uplinks; machines 0,1 in loc 0, machine 2 in loc 1.
        let mut net = CampusNetwork::new(
            SharedLink::new(0.0, 1e9),
            vec![SharedLink::new(0.0, 100.0), SharedLink::new(0.0, 100.0)],
            vec![0, 0, 1],
        );
        // Call order defines FIFO order on the (fast) server link, so
        // issue the independent-location transfer before the queued one.
        let a = net.transfer(0, 0.0, 100); // loc0: 0..1
        let c = net.transfer(2, 0.0, 100); // loc1: 0..1, unaffected by loc0
        let b = net.transfer(1, 0.0, 100); // loc0: queued 1..2
        assert!((a - 1.0).abs() < 1e-6);
        assert!((b - 2.0).abs() < 1e-6, "same-location traffic queues");
        assert!((c - 1.0).abs() < 1e-6, "other location is independent");
        assert!(net.location_queue_waits()[0] > 0.0);
        assert_eq!(net.location_queue_waits()[1], 0.0);
    }

    #[test]
    fn server_link_is_the_shared_bottleneck() {
        // Fast location uplinks, slow server link: all traffic queues at
        // the server regardless of location.
        let mut net = CampusNetwork::new(
            SharedLink::new(0.0, 100.0),
            vec![SharedLink::new(0.0, 1e9), SharedLink::new(0.0, 1e9)],
            vec![0, 1],
        );
        let a = net.transfer(0, 0.0, 100);
        let b = net.transfer(1, 0.0, 100);
        assert!((a - 1.0).abs() < 1e-6);
        assert!(
            (b - 2.0).abs() < 1e-6,
            "cross-location traffic shares the server"
        );
        assert!(net.mean_server_queue_wait() > 0.0);
        assert_eq!(net.total_bytes(), 200);
    }

    #[test]
    #[should_panic(expected = "missing location")]
    fn bad_location_mapping_panics() {
        CampusNetwork::new(
            SharedLink::new(0.0, 1.0),
            vec![SharedLink::new(0.0, 1.0)],
            vec![1],
        );
    }
}
