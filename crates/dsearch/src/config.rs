//! DSEARCH configuration.
//!
//! Paper §3.1: "The user edits a straightforward configuration file to
//! tailor their computation and chooses one of the built-in search
//! algorithms. The inputs to the program are a FASTA database file, a
//! FASTA query sequences file, a scoring scheme, and a configuration
//! file." The recognised keys:
//!
//! ```text
//! algorithm   = smith-waterman        # nw | sw | fast-local | striped | banded:<w>
//! alphabet    = protein               # protein | dna
//! matrix      = blosum62              # blosum62 | match:<m>,<x> | tt:<m>,<ts>,<tv>
//! gap_open    = 11
//! gap_extend  = 1
//! top_hits    = 25
//! ```

use biodist_align::KernelKind;
use biodist_bioseq::{Alphabet, GapPenalty, ScoringMatrix, ScoringScheme};
use biodist_util::config::Config;

/// Parsed DSEARCH settings.
#[derive(Debug, Clone)]
pub struct DsearchConfig {
    /// Which rigorous kernel to run.
    pub kernel: KernelKind,
    /// Scoring scheme (matrix + gaps).
    pub scheme: ScoringScheme,
    /// How many hits to report per query.
    pub top_hits: usize,
    /// Abstract ops charged per DP cell (`cost_scale` key, default 1).
    ///
    /// Calibration between this library's optimised kernels and the
    /// donor-machine speed scale: the paper's Java implementation of
    /// 2004 evaluated far fewer cells per second than optimised Rust,
    /// so experiment harnesses charge ~100 ops/cell to reproduce the
    /// paper's hours-long search times in virtual time while keeping
    /// real compute tractable.
    pub cost_scale: f64,
}

impl DsearchConfig {
    /// The default configuration: Smith–Waterman over BLOSUM62 11/1,
    /// 25 hits per query.
    pub fn protein_default() -> Self {
        Self {
            kernel: KernelKind::SmithWaterman,
            scheme: ScoringScheme::protein_default(),
            top_hits: 25,
            cost_scale: 1.0,
        }
    }

    /// Parses a configuration file's text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let cfg = Config::parse(text).map_err(|e| e.to_string())?;
        Self::from_config(&cfg)
    }

    /// Builds settings from an already-parsed [`Config`].
    pub fn from_config(cfg: &Config) -> Result<Self, String> {
        let kernel = match cfg.get("algorithm") {
            None => KernelKind::SmithWaterman,
            Some(a) => KernelKind::parse(a)?,
        };
        let alphabet = match cfg.get("alphabet").unwrap_or("protein") {
            "protein" => Alphabet::Protein,
            "dna" => Alphabet::Dna,
            other => return Err(format!("unknown alphabet `{other}`")),
        };
        let matrix = match cfg.get("matrix") {
            None => match alphabet {
                Alphabet::Protein => ScoringMatrix::blosum62(),
                Alphabet::Dna => ScoringMatrix::match_mismatch(Alphabet::Dna, 5, -4),
            },
            Some("blosum62") => {
                if alphabet != Alphabet::Protein {
                    return Err("blosum62 requires alphabet = protein".into());
                }
                ScoringMatrix::blosum62()
            }
            Some(spec) => parse_matrix_spec(alphabet, spec)?,
        };
        let gap_open = cfg.get_u64_or("gap_open", 11).map_err(|e| e.to_string())? as i32;
        let gap_extend = cfg.get_u64_or("gap_extend", 1).map_err(|e| e.to_string())? as i32;
        if gap_extend > gap_open {
            return Err(format!(
                "gap_extend ({gap_extend}) must not exceed gap_open ({gap_open})"
            ));
        }
        let top_hits = cfg.get_u64_or("top_hits", 25).map_err(|e| e.to_string())? as usize;
        if top_hits == 0 {
            return Err("top_hits must be at least 1".into());
        }
        let cost_scale = cfg
            .get_f64_or("cost_scale", 1.0)
            .map_err(|e| e.to_string())?;
        if cost_scale <= 0.0 {
            return Err("cost_scale must be positive".into());
        }
        Ok(Self {
            kernel,
            scheme: ScoringScheme {
                matrix,
                gap: GapPenalty::affine(gap_open, gap_extend),
            },
            top_hits,
            cost_scale,
        })
    }
}

fn parse_matrix_spec(alphabet: Alphabet, spec: &str) -> Result<ScoringMatrix, String> {
    if let Some(rest) = spec.strip_prefix("match:") {
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 2 {
            return Err(format!("match matrix needs `match:<m>,<x>`, got `{spec}`"));
        }
        let m: i32 = parts[0]
            .trim()
            .parse()
            .map_err(|_| format!("bad match score `{}`", parts[0]))?;
        let x: i32 = parts[1]
            .trim()
            .parse()
            .map_err(|_| format!("bad mismatch score `{}`", parts[1]))?;
        return Ok(ScoringMatrix::match_mismatch(alphabet, m, x));
    }
    if let Some(rest) = spec.strip_prefix("tt:") {
        if alphabet != Alphabet::Dna {
            return Err("transition/transversion matrix requires alphabet = dna".into());
        }
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != 3 {
            return Err(format!("tt matrix needs `tt:<m>,<ts>,<tv>`, got `{spec}`"));
        }
        let vals: Result<Vec<i32>, _> = parts.iter().map(|p| p.trim().parse::<i32>()).collect();
        let vals = vals.map_err(|_| format!("bad tt matrix values in `{spec}`"))?;
        return Ok(ScoringMatrix::dna_transition_transversion(
            vals[0], vals[1], vals[2],
        ));
    }
    Err(format!("unknown matrix `{spec}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_file_round_trips() {
        let cfg = DsearchConfig::parse(
            "algorithm = smith-waterman\nmatrix = blosum62\ngap_open = 11\ngap_extend = 1\ntop_hits = 25\n",
        )
        .unwrap();
        assert_eq!(cfg.kernel, KernelKind::SmithWaterman);
        assert_eq!(cfg.top_hits, 25);
        assert_eq!(cfg.scheme.gap, GapPenalty::affine(11, 1));
    }

    #[test]
    fn empty_config_gives_protein_defaults() {
        let cfg = DsearchConfig::parse("").unwrap();
        assert_eq!(cfg.kernel, KernelKind::SmithWaterman);
        assert_eq!(cfg.scheme.alphabet(), Alphabet::Protein);
    }

    #[test]
    fn dna_match_matrix_parses() {
        let cfg =
            DsearchConfig::parse("alphabet = dna\nmatrix = match:5,-4\ngap_open=10\n").unwrap();
        assert_eq!(cfg.scheme.alphabet(), Alphabet::Dna);
        assert_eq!(cfg.scheme.matrix.score(0, 0), 5);
        assert_eq!(cfg.scheme.matrix.score(0, 1), -4);
    }

    #[test]
    fn transition_transversion_matrix_parses() {
        let cfg = DsearchConfig::parse("alphabet = dna\nmatrix = tt:4,-1,-3\n").unwrap();
        // A->G transition.
        assert_eq!(cfg.scheme.matrix.score(0, 2), -1);
        // A->C transversion.
        assert_eq!(cfg.scheme.matrix.score(0, 1), -3);
    }

    #[test]
    fn striped_kernel_parses() {
        for spelling in ["striped", "simd"] {
            let cfg = DsearchConfig::parse(&format!("algorithm = {spelling}\n")).unwrap();
            assert_eq!(cfg.kernel, KernelKind::Striped, "{spelling}");
        }
    }

    #[test]
    fn banded_kernel_parses() {
        let cfg = DsearchConfig::parse("algorithm = banded:12\n").unwrap();
        assert_eq!(cfg.kernel, KernelKind::Banded { band: 12 });
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(DsearchConfig::parse("algorithm = blastish\n").is_err());
        assert!(DsearchConfig::parse("alphabet = rna\n").is_err());
        assert!(DsearchConfig::parse("matrix = blosum99\n").is_err());
        assert!(DsearchConfig::parse("alphabet=dna\nmatrix = blosum62\n").is_err());
        assert!(DsearchConfig::parse("gap_open = 1\ngap_extend = 5\n").is_err());
        assert!(DsearchConfig::parse("top_hits = 0\n").is_err());
        assert!(DsearchConfig::parse("alphabet=protein\nmatrix = tt:1,2,3\n").is_err());
        assert!(DsearchConfig::parse("matrix = match:1\n").is_err());
    }
}
