//! # biodist-dsearch
//!
//! DSEARCH (paper §3.1, ref \[8\]): sensitive sequence-database search
//! on the distributed framework. The FASTA database is split into
//! *dynamically sized* chunks — the scheduler's granularity hint is
//! translated into a number of DP cells, and the `DataManager` packs
//! database sequences until the chunk reaches that cost — which are
//! searched on donor machines with one of the built-in rigorous
//! kernels (Needleman–Wunsch, Smith–Waterman, the fast anti-diagonal
//! kernel, or banded). Per-chunk top-K hit lists merge deterministically
//! on the server, so the distributed search reports exactly the same
//! hits as the sequential reference regardless of chunking or arrival
//! order.

pub mod config;
pub mod problem;
pub mod reference;
pub mod stats;
pub mod translated;

pub use config::DsearchConfig;
pub use problem::{build_problem, SearchOutput};
pub use reference::search_sequential;
pub use stats::{annotate_hits, ScoreStatistics, ScoredHit};
pub use translated::{build_translated_problem, search_translated_sequential};
