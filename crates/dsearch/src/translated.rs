//! Translated search: protein queries against a DNA database.
//!
//! The classic "tblastn" mode: every database sequence is translated in
//! all six reading frames and each frame is scored against the protein
//! query with the configured kernel; a subject's score is the best over
//! its frames. Chunking, merging and determinism work exactly as in the
//! direct protein search — the same top-K machinery guarantees the
//! distributed result equals [`search_translated_sequential`].

use crate::config::DsearchConfig;
use biodist_align::{AlignKernel, Hit, TopK};
use biodist_bioseq::codon::six_frame_translations;
use biodist_bioseq::{Alphabet, Sequence};
use biodist_core::{Algorithm, DataManager, Payload, Problem, TaskResult, UnitId, WorkUnit};
use std::collections::BTreeMap;
use std::sync::Arc;

fn best_frame_score(kernel: &AlignKernel, query: &Sequence, dna_subject: &Sequence) -> i32 {
    six_frame_translations(dna_subject)
        .iter()
        .map(|t| kernel.score(query, &t.protein))
        .max()
        .expect("six frames always exist")
}

/// DP cells across all six frames of one subject (cost model).
fn translated_cost_cells(kernel: &AlignKernel, query: &Sequence, dna_subject: &Sequence) -> u64 {
    // Each frame is ~len/3 residues; six frames ≈ 2·len·qlen cells.
    let frame_len = (dna_subject.len() / 3) as u64;
    let proxy = Sequence::from_codes("f", Alphabet::Protein, vec![0; frame_len as usize]);
    6 * kernel.cost_cells(query, &proxy)
}

/// Sequential reference for translated search.
pub fn search_translated_sequential(
    dna_database: &[Sequence],
    protein_queries: &[Sequence],
    config: &DsearchConfig,
) -> BTreeMap<String, Vec<Hit>> {
    let kernel = AlignKernel::new(config.kernel, config.scheme.clone());
    let mut per_query: BTreeMap<String, TopK> = protein_queries
        .iter()
        .map(|q| (q.id.clone(), TopK::new(config.top_hits)))
        .collect();
    for subject in dna_database {
        for query in protein_queries {
            let score = best_frame_score(&kernel, query, subject);
            per_query
                .get_mut(&query.id)
                .expect("registered")
                .offer(Hit {
                    query_id: query.id.clone(),
                    db_id: subject.id.clone(),
                    score,
                });
        }
    }
    per_query
        .into_iter()
        .map(|(q, t)| (q, t.into_sorted()))
        .collect()
}

struct TranslatedDm {
    db: Arc<Vec<Sequence>>,
    queries: Arc<Vec<Sequence>>,
    kernel: AlignKernel,
    top_hits: usize,
    cost_scale: f64,
    cursor: usize,
    issued: u64,
    received: u64,
    next_id: UnitId,
    merged: BTreeMap<String, TopK>,
}

#[derive(Debug, Clone, Copy)]
struct ChunkRange {
    start: usize,
    end: usize,
}

impl DataManager for TranslatedDm {
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit> {
        if self.cursor >= self.db.len() {
            return None;
        }
        let start = self.cursor;
        let mut cost = 0.0;
        while self.cursor < self.db.len() && cost < hint_ops {
            let s = &self.db[self.cursor];
            cost += self
                .queries
                .iter()
                .map(|q| translated_cost_cells(&self.kernel, q, s))
                .sum::<u64>() as f64
                * self.cost_scale;
            self.cursor += 1;
        }
        let range = ChunkRange {
            start,
            end: self.cursor,
        };
        self.issued += 1;
        let id = self.next_id;
        self.next_id += 1;
        let wire: u64 = self.db[range.start..range.end]
            .iter()
            .map(|s| s.len() as u64 / 4 + 64) // 2-bit packed DNA on a real wire
            .sum();
        Some(WorkUnit {
            id,
            payload: Payload::new(range, wire),
            cost_ops: cost,
        })
    }

    fn accept_result(&mut self, result: TaskResult) {
        for hit in result.payload.into_inner::<Vec<Hit>>() {
            self.merged
                .entry(hit.query_id.clone())
                .or_insert_with(|| TopK::new(self.top_hits))
                .offer(hit);
        }
        self.received += 1;
    }

    fn is_complete(&self) -> bool {
        self.cursor >= self.db.len() && self.received == self.issued
    }

    fn final_output(&mut self) -> Payload {
        let mut hits: BTreeMap<String, Vec<Hit>> = std::mem::take(&mut self.merged)
            .into_iter()
            .map(|(q, t)| (q, t.into_sorted()))
            .collect();
        for q in self.queries.iter() {
            hits.entry(q.id.clone()).or_default();
        }
        let wire = hits.values().map(|v| v.len() as u64 * 48).sum();
        Payload::new(crate::problem::SearchOutput { hits }, wire)
    }
}

struct TranslatedAlgo {
    db: Arc<Vec<Sequence>>,
    queries: Arc<Vec<Sequence>>,
    kernel: AlignKernel,
    top_hits: usize,
}

impl Algorithm for TranslatedAlgo {
    fn compute(&self, unit: &WorkUnit) -> TaskResult {
        let range = *unit
            .payload
            .downcast_ref::<ChunkRange>()
            .expect("chunk range");
        let mut per_query: BTreeMap<String, TopK> = BTreeMap::new();
        for subject in &self.db[range.start..range.end] {
            for query in self.queries.iter() {
                let score = best_frame_score(&self.kernel, query, subject);
                per_query
                    .entry(query.id.clone())
                    .or_insert_with(|| TopK::new(self.top_hits))
                    .offer(Hit {
                        query_id: query.id.clone(),
                        db_id: subject.id.clone(),
                        score,
                    });
            }
        }
        let hits: Vec<Hit> = per_query
            .into_values()
            .flat_map(TopK::into_sorted)
            .collect();
        let wire = hits.len() as u64 * 48;
        TaskResult {
            unit_id: unit.id,
            payload: Payload::new(hits, wire),
        }
    }
}

/// Builds a translated-search [`Problem`]: DNA database, protein
/// queries, protein scoring scheme.
///
/// # Panics
/// Panics if the database is not DNA, the queries are not protein, or
/// the configured scheme is not a protein scheme.
pub fn build_translated_problem(
    dna_database: Vec<Sequence>,
    protein_queries: Vec<Sequence>,
    config: &DsearchConfig,
) -> Problem {
    assert!(!dna_database.is_empty(), "empty database");
    assert!(!protein_queries.is_empty(), "no queries");
    assert!(
        dna_database.iter().all(|s| s.alphabet == Alphabet::Dna),
        "translated search needs a DNA database"
    );
    assert!(
        protein_queries
            .iter()
            .all(|s| s.alphabet == Alphabet::Protein),
        "translated search needs protein queries"
    );
    assert_eq!(
        config.scheme.alphabet(),
        Alphabet::Protein,
        "translated search scores in protein space"
    );
    let db = Arc::new(dna_database);
    let queries = Arc::new(protein_queries);
    let kernel = AlignKernel::new(config.kernel, config.scheme.clone());
    let setup: u64 = queries.iter().map(|q| q.len() as u64 + 64).sum::<u64>() + 120_000;
    let dm = TranslatedDm {
        db: db.clone(),
        queries: queries.clone(),
        kernel: kernel.clone(),
        top_hits: config.top_hits,
        cost_scale: config.cost_scale,
        cursor: 0,
        issued: 0,
        received: 0,
        next_id: 0,
        merged: BTreeMap::new(),
    };
    let algo = TranslatedAlgo {
        db,
        queries,
        kernel,
        top_hits: config.top_hits,
    };
    Problem::new("dsearch-translated", Box::new(dm), Arc::new(algo)).with_setup_bytes(setup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SearchOutput;
    use biodist_bioseq::codon::reverse_complement;
    use biodist_bioseq::synth::{random_sequence, DbSpec, SyntheticDb};
    use biodist_core::{run_threaded, SchedulerConfig, Server};

    /// Encodes a protein back to DNA using one codon per residue (the
    /// lexicographically first codon in the table).
    fn encode_protein(protein: &Sequence) -> Vec<u8> {
        use biodist_bioseq::codon::translate_codon;
        let mut dna = Vec::with_capacity(protein.len() * 3);
        'residue: for &aa in protein.codes() {
            for c1 in 0..4u8 {
                for c2 in 0..4u8 {
                    for c3 in 0..4u8 {
                        if translate_codon(c1, c2, c3) == Some(aa) {
                            dna.extend([c1, c2, c3]);
                            continue 'residue;
                        }
                    }
                }
            }
            panic!("no codon for residue {aa}");
        }
        dna
    }

    fn inputs() -> (Vec<Sequence>, Sequence, DsearchConfig) {
        let query = random_sequence(Alphabet::Protein, "pq", 40, 9);
        let mut db = SyntheticDb::generate(&DbSpec::dna_demo(25, 150), 10).sequences;
        // Plant the coding region, forward strand, inside sequence 0...
        let coding = encode_protein(&query);
        let mut fwd = db[0].codes().to_vec();
        fwd.splice(9..9, coding.iter().copied());
        db[0] = Sequence::from_codes("fwd_hit", Alphabet::Dna, fwd);
        // ...and reverse-complemented inside sequence 1.
        let rc = reverse_complement(&Sequence::from_codes("tmp", Alphabet::Dna, coding));
        let mut rev = db[1].codes().to_vec();
        rev.splice(30..30, rc.codes().iter().copied());
        db[1] = Sequence::from_codes("rev_hit", Alphabet::Dna, rev);

        let mut cfg = DsearchConfig::protein_default();
        cfg.top_hits = 5;
        (db, query, cfg)
    }

    #[test]
    fn finds_coding_regions_on_both_strands() {
        let (db, query, cfg) = inputs();
        let hits = search_translated_sequential(&db, &[query], &cfg);
        let top2: Vec<&str> = hits["pq"][..2].iter().map(|h| h.db_id.as_str()).collect();
        assert!(
            top2.contains(&"fwd_hit"),
            "forward-strand ORF missed: {top2:?}"
        );
        assert!(
            top2.contains(&"rev_hit"),
            "reverse-strand ORF missed: {top2:?}"
        );
        // A planted exact ORF must vastly outscore random background.
        assert!(hits["pq"][0].score > 3 * hits["pq"][2].score.max(1));
    }

    #[test]
    fn distributed_translated_equals_sequential() {
        let (db, query, cfg) = inputs();
        let expected = search_translated_sequential(&db, std::slice::from_ref(&query), &cfg);
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 0.002,
            prior_ops_per_sec: 1e8,
            min_unit_ops: 1.0,
            ..Default::default()
        });
        let pid = server.submit(build_translated_problem(db, vec![query], &cfg));
        let (mut server, _) = run_threaded(server, 4);
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        assert_eq!(out.hits, expected);
    }

    #[test]
    #[should_panic(expected = "DNA database")]
    fn rejects_protein_database() {
        let (_, query, cfg) = inputs();
        let protein_db = vec![random_sequence(Alphabet::Protein, "p", 30, 1)];
        build_translated_problem(protein_db, vec![query], &cfg);
    }

    #[test]
    #[should_panic(expected = "protein queries")]
    fn rejects_dna_queries() {
        let (db, _, cfg) = inputs();
        let dna_q = vec![random_sequence(Alphabet::Dna, "d", 30, 1)];
        build_translated_problem(db, dna_q, &cfg);
    }
}
