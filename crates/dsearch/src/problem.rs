//! DSEARCH as a framework [`Problem`].
//!
//! The `DataManager` walks the database once, packing sequences into
//! chunks whose estimated DP-cell cost matches the scheduler's dynamic
//! granularity hint (paper §3.1: chunk sizes track donor speed). The
//! `Algorithm` scores its chunk against every query and returns a
//! per-chunk top-K list; the manager merges chunk lists into the global
//! answer. Because [`biodist_align::TopK`] has a deterministic total
//! order and order-independent merge, the distributed output equals
//! [`crate::reference::search_sequential`] exactly.

use crate::config::DsearchConfig;
use biodist_align::{AlignKernel, Hit, PreparedQuery, TopK};
use biodist_bioseq::{Alphabet, Sequence};
use biodist_core::telemetry::{OPS_BOUNDS, SIZE_BOUNDS};
use biodist_core::{
    chunk_digest, Algorithm, ByteReader, ByteWriter, ChunkNeed, DataManager, Payload, Problem,
    TaskResult, Telemetry, UnitId, WireCodec, WireError, WorkUnit,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Final output of a distributed search: per-query hit lists,
/// best-first.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutput {
    /// `query id → hits`, each list sorted best-first.
    pub hits: BTreeMap<String, Vec<Hit>>,
}

impl SearchOutput {
    /// Order-sensitive FNV-1a digest of every query id, hit id and
    /// score. Two outputs digest equal iff they are bit-identical, so
    /// the chaos suite can compare a fault-injected run against the
    /// sequential reference with one `u64`.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for (query, hits) in &self.hits {
            eat(query.as_bytes());
            eat(&[0xff]);
            for hit in hits {
                eat(hit.query_id.as_bytes());
                eat(&[0xfe]);
                eat(hit.db_id.as_bytes());
                eat(&[0xfd]);
                eat(&hit.score.to_le_bytes());
            }
        }
        h
    }
}

/// The unit payload: a range of database indices plus the chunk
/// references a remote donor needs to compute it. In-process backends
/// leave `data` as `None` and the algorithm scans its local database
/// slice; over TCP the client hydrates `data` from its chunk cache
/// (fetching misses), so only absent residues ever cross the wire.
#[derive(Debug, Clone)]
struct DsearchUnit {
    start: usize,
    end: usize,
    needs: Vec<ChunkNeed>,
    data: Option<Vec<Sequence>>,
}

/// One database sequence as wire bytes (the `ChunkData` payload): id,
/// alphabet tag, length-prefixed residue codes.
fn encode_db_chunk(seq: &Sequence) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.str(&seq.id);
    w.u8(match seq.alphabet {
        Alphabet::Dna => 0,
        Alphabet::Protein => 1,
    });
    w.bytes(seq.codes());
    w.into_bytes()
}

fn decode_db_chunk(bytes: &[u8]) -> Result<Sequence, WireError> {
    let mut r = ByteReader::new(bytes);
    let id = r.str()?;
    let alphabet = match r.u8()? {
        0 => Alphabet::Dna,
        1 => Alphabet::Protein,
        t => return Err(WireError::new(format!("unknown alphabet tag {t}"))),
    };
    let codes = r.bytes()?.to_vec();
    r.finish()?;
    // `Sequence::from_codes` asserts code ranges; validate first so a
    // hostile chunk is a WireError, not a panic.
    if codes.iter().any(|&c| c > alphabet.any_code()) {
        return Err(WireError::new("residue code out of range for alphabet"));
    }
    Ok(Sequence::from_codes(&id, alphabet, codes))
}

/// Precomputed per-sequence chunk metadata: `chunk_meta[i]` describes
/// database sequence `i` as shipped by [`WireCodec::encode_chunk`].
fn chunk_table(db: &[Sequence]) -> Vec<ChunkNeed> {
    db.iter()
        .enumerate()
        .map(|(i, seq)| {
            let bytes = encode_db_chunk(seq);
            ChunkNeed {
                chunk: i as u64,
                digest: chunk_digest(&bytes),
                bytes: bytes.len() as u64,
            }
        })
        .collect()
}

struct DsearchDm {
    db: Arc<Vec<Sequence>>,
    queries: Arc<Vec<Sequence>>,
    kernel: AlignKernel,
    chunk_meta: Arc<Vec<ChunkNeed>>,
    top_hits: usize,
    cost_scale: f64,
    cursor: usize,
    /// Units issued but not yet folded back. Replaces the old separate
    /// `issued`/`received` pair — completeness only ever needed the
    /// difference, and the totals now live in the telemetry registry
    /// (`dsearch.units_issued` / `dsearch.units_received`).
    outstanding: u64,
    next_id: UnitId,
    merged: BTreeMap<String, TopK>,
    telemetry: Telemetry,
}

impl DsearchDm {
    fn chunk_cost(&self, range: std::ops::Range<usize>) -> f64 {
        self.db[range]
            .iter()
            .map(|s| {
                self.queries
                    .iter()
                    .map(|q| self.kernel.cost_cells(q, s))
                    .sum::<u64>() as f64
            })
            .sum::<f64>()
            * self.cost_scale
    }
}

impl DataManager for DsearchDm {
    fn next_unit(&mut self, hint_ops: f64) -> Option<WorkUnit> {
        if self.cursor >= self.db.len() {
            return None;
        }
        // Pack sequences until the chunk's cost reaches the hint.
        let start = self.cursor;
        let mut cost = 0.0;
        while self.cursor < self.db.len() && cost < hint_ops {
            let s = &self.db[self.cursor];
            cost += self
                .queries
                .iter()
                .map(|q| self.kernel.cost_cells(q, s))
                .sum::<u64>() as f64
                * self.cost_scale;
            self.cursor += 1;
        }
        let end = self.cursor;
        self.outstanding += 1;
        let id = self.next_id;
        self.next_id += 1;
        let needs = self.chunk_meta[start..end].to_vec();
        // The unit itself is now just references: range + chunk list.
        // Residues cross the wire separately, and only on cache miss
        // (the backends charge those bytes per missing ChunkNeed).
        let wire = 16 + needs.len() as u64 * 24;
        let cost_ops = self.chunk_cost(start..end);
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("dsearch.units_issued", 1);
            self.telemetry
                .observe("dsearch.chunk_seqs", SIZE_BOUNDS, (end - start) as f64);
            self.telemetry
                .observe("dsearch.chunk_ops", OPS_BOUNDS, cost_ops);
        }
        Some(WorkUnit {
            id,
            payload: Payload::new(
                DsearchUnit {
                    start,
                    end,
                    needs,
                    data: None,
                },
                wire,
            ),
            cost_ops,
        })
    }

    fn accept_result(&mut self, result: TaskResult) {
        let hits = result.payload.into_inner::<Vec<Hit>>();
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("dsearch.units_received", 1);
            self.telemetry
                .counter_add("dsearch.hits_offered", hits.len() as u64);
        }
        for hit in hits {
            self.merged
                .entry(hit.query_id.clone())
                .or_insert_with(|| TopK::new(self.top_hits))
                .offer(hit);
        }
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    fn is_complete(&self) -> bool {
        self.cursor >= self.db.len() && self.outstanding == 0
    }

    fn final_output(&mut self) -> Payload {
        let mut hits: BTreeMap<String, Vec<Hit>> = std::mem::take(&mut self.merged)
            .into_iter()
            .map(|(q, topk)| (q, topk.into_sorted()))
            .collect();
        // Queries with no hit offered anywhere still get an entry.
        for q in self.queries.iter() {
            hits.entry(q.id.clone()).or_default();
        }
        let wire = hits.values().map(|v| v.len() as u64 * 48).sum();
        if self.telemetry.is_enabled() {
            let kept: usize = hits.values().map(Vec::len).sum();
            self.telemetry.gauge_set("dsearch.hits_kept", kept as f64);
        }
        Payload::new(SearchOutput { hits }, wire)
    }

    fn attach_telemetry(&mut self, telemetry: Telemetry, _problem: biodist_core::ProblemId) {
        self.telemetry = telemetry;
    }
}

struct DsearchAlgo {
    db: Arc<Vec<Sequence>>,
    queries: Arc<Vec<Sequence>>,
    kernel: AlignKernel,
    /// Per-query reusable kernel state (the striped query profile),
    /// built once when the problem is constructed and shared by every
    /// work unit — the chunked batch path the striped kernel is
    /// designed for: one profile, thousands of subjects.
    prepared: Vec<PreparedQuery>,
    top_hits: usize,
}

impl Algorithm for DsearchAlgo {
    fn compute(&self, unit: &WorkUnit) -> TaskResult {
        let u = unit
            .payload
            .downcast_ref::<DsearchUnit>()
            .expect("dsearch unit");
        // Hydrated units (TCP) carry their residues; in-process units
        // reference the locally shared database slice. Both paths score
        // identical sequences, so results are bit-identical.
        let subjects: &[Sequence] = match &u.data {
            Some(data) => data,
            None => &self.db[u.start..u.end],
        };
        let mut per_query: BTreeMap<String, TopK> = BTreeMap::new();
        for subject in subjects {
            for (query, prep) in self.queries.iter().zip(&self.prepared) {
                let score = self.kernel.score_prepared(query, prep, subject);
                per_query
                    .entry(query.id.clone())
                    .or_insert_with(|| TopK::new(self.top_hits))
                    .offer(Hit {
                        query_id: query.id.clone(),
                        db_id: subject.id.clone(),
                        score,
                    });
            }
        }
        let hits: Vec<Hit> = per_query
            .into_values()
            .flat_map(TopK::into_sorted)
            .collect();
        let wire = hits.len() as u64 * 48;
        TaskResult {
            unit_id: unit.id,
            payload: Payload::new(hits, wire),
        }
    }
}

/// Wire codec for DSEARCH. A unit is its database index range plus the
/// chunk references it depends on (paper-style donor-side caching made
/// real: residues ship as separate `ChunkData` frames, once per donor,
/// cache-keyed by content digest); a result is the chunk's flat hit
/// list.
struct DsearchCodec {
    db: Arc<Vec<Sequence>>,
}

impl WireCodec for DsearchCodec {
    fn encode_unit(&self, payload: &Payload) -> Result<Vec<u8>, WireError> {
        let u = payload
            .downcast_ref::<DsearchUnit>()
            .ok_or_else(|| WireError::new("dsearch unit payload is not a DsearchUnit"))?;
        let mut w = ByteWriter::new();
        w.usize(u.start);
        w.usize(u.end);
        w.u32(u.needs.len() as u32);
        for need in &u.needs {
            w.u64(need.chunk);
            w.u64(need.digest);
            w.u64(need.bytes);
        }
        Ok(w.into_bytes())
    }

    fn decode_unit(&self, bytes: &[u8]) -> Result<Payload, WireError> {
        let mut r = ByteReader::new(bytes);
        let (start, end) = (r.usize()?, r.usize()?);
        if start > end {
            return Err(WireError::new(format!(
                "inverted chunk range {start}..{end}"
            )));
        }
        let n = r.count(24)?;
        let mut needs = Vec::with_capacity(n);
        for _ in 0..n {
            needs.push(ChunkNeed {
                chunk: r.u64()?,
                digest: r.u64()?,
                bytes: r.u64()?,
            });
        }
        r.finish()?;
        Ok(Payload::new(
            DsearchUnit {
                start,
                end,
                needs,
                data: None,
            },
            bytes.len() as u64,
        ))
    }

    fn encode_result(&self, payload: &Payload) -> Result<Vec<u8>, WireError> {
        let hits = payload
            .downcast_ref::<Vec<Hit>>()
            .ok_or_else(|| WireError::new("dsearch result payload is not a hit list"))?;
        let mut w = ByteWriter::new();
        w.u32(hits.len() as u32);
        for hit in hits {
            w.str(&hit.query_id);
            w.str(&hit.db_id);
            w.i32(hit.score);
        }
        Ok(w.into_bytes())
    }

    fn decode_result(&self, bytes: &[u8]) -> Result<Payload, WireError> {
        let mut r = ByteReader::new(bytes);
        // Each hit is ≥ two length prefixes + a score = 12 bytes.
        let n = r.count(12)?;
        let mut hits = Vec::with_capacity(n);
        for _ in 0..n {
            hits.push(Hit {
                query_id: r.str()?,
                db_id: r.str()?,
                score: r.i32()?,
            });
        }
        r.finish()?;
        Ok(Payload::new(hits, bytes.len() as u64))
    }

    fn unit_chunks(&self, payload: &Payload) -> Vec<ChunkNeed> {
        payload
            .downcast_ref::<DsearchUnit>()
            .map(|u| u.needs.clone())
            .unwrap_or_default()
    }

    fn encode_chunk(&self, chunk: u64) -> Result<Vec<u8>, WireError> {
        let seq = usize::try_from(chunk)
            .ok()
            .and_then(|i| self.db.get(i))
            .ok_or_else(|| WireError::new(format!("chunk {chunk} out of database range")))?;
        Ok(encode_db_chunk(seq))
    }

    fn hydrate_unit(
        &self,
        payload: Payload,
        chunks: &[(u64, Arc<Vec<u8>>)],
    ) -> Result<Payload, WireError> {
        let u = payload
            .downcast_ref::<DsearchUnit>()
            .ok_or_else(|| WireError::new("dsearch unit payload is not a DsearchUnit"))?;
        if chunks.len() != u.needs.len() {
            return Err(WireError::new(format!(
                "hydration got {} chunks for {} needs",
                chunks.len(),
                u.needs.len()
            )));
        }
        let mut data = Vec::with_capacity(chunks.len());
        for (need, (chunk, bytes)) in u.needs.iter().zip(chunks) {
            if *chunk != need.chunk {
                return Err(WireError::new(format!(
                    "hydration chunk {chunk} out of order (expected {})",
                    need.chunk
                )));
            }
            data.push(decode_db_chunk(bytes)?);
        }
        let wire = payload.wire_bytes();
        let hydrated = DsearchUnit {
            data: Some(data),
            ..u.clone()
        };
        Ok(Payload::new(hydrated, wire))
    }
}

/// Builds the DSEARCH [`Problem`] for a database, query set and
/// configuration.
pub fn build_problem(
    database: Vec<Sequence>,
    queries: Vec<Sequence>,
    config: &DsearchConfig,
) -> Problem {
    assert!(!database.is_empty(), "empty database");
    assert!(!queries.is_empty(), "no queries");
    let db = Arc::new(database);
    let queries = Arc::new(queries);
    let kernel = AlignKernel::new(config.kernel, config.scheme.clone());
    // Clients download the query file and search code up front; the
    // database itself arrives chunk by chunk.
    let setup: u64 = queries.iter().map(|q| q.len() as u64 + 64).sum::<u64>() + 100_000;
    let chunk_meta = Arc::new(chunk_table(&db));
    let dm = DsearchDm {
        db: db.clone(),
        queries: queries.clone(),
        kernel: kernel.clone(),
        chunk_meta,
        top_hits: config.top_hits,
        cost_scale: config.cost_scale,
        cursor: 0,
        outstanding: 0,
        next_id: 0,
        merged: BTreeMap::new(),
        telemetry: Telemetry::default(),
    };
    let prepared = queries.iter().map(|q| kernel.prepare(q)).collect();
    let algo = DsearchAlgo {
        db: db.clone(),
        queries,
        kernel,
        prepared,
        top_hits: config.top_hits,
    };
    Problem::new("dsearch", Box::new(dm), Arc::new(algo))
        .with_setup_bytes(setup)
        .with_codec(Arc::new(DsearchCodec { db }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::search_sequential;
    use biodist_bioseq::synth::{random_sequence, DbSpec, FamilySpec, SyntheticDb};
    use biodist_bioseq::Alphabet;
    use biodist_core::{run_threaded, SchedulerConfig, Server, SimRunner};
    use biodist_gridsim::deployments::heterogeneous_lab;

    fn test_inputs() -> (Vec<Sequence>, Vec<Sequence>, DsearchConfig) {
        let query = random_sequence(Alphabet::Protein, "q0", 90, 71);
        let fam = FamilySpec {
            copies: 4,
            substitution_rate: 0.15,
            indel_rate: 0.02,
        };
        let db =
            SyntheticDb::generate_with_family(&DbSpec::protein_demo(60, 100), &query, &fam, 72);
        let mut cfg = DsearchConfig::protein_default();
        cfg.top_hits = 10;
        (db.sequences, vec![query], cfg)
    }

    fn small_unit_sched() -> SchedulerConfig {
        SchedulerConfig {
            target_unit_secs: 0.001,
            prior_ops_per_sec: 1e7,
            min_unit_ops: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn distributed_threaded_equals_sequential() {
        let (db, queries, cfg) = test_inputs();
        let expected = search_sequential(&db, &queries, &cfg);
        let mut server = Server::new(small_unit_sched());
        let pid = server.submit(build_problem(db, queries, &cfg));
        let (mut server, _) = run_threaded(server, 6);
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        assert_eq!(out.hits, expected);
        assert!(
            server.stats(pid).completed_units > 1,
            "search was actually split"
        );
    }

    #[test]
    fn distributed_simulated_equals_sequential() {
        let (db, queries, cfg) = test_inputs();
        let expected = search_sequential(&db, &queries, &cfg);
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 5.0,
            ..Default::default()
        });
        let pid = server.submit(build_problem(db, queries, &cfg));
        let machines = heterogeneous_lab(10, 99);
        let (report, mut server) = SimRunner::with_defaults(server, machines).run();
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        assert_eq!(out.hits, expected);
        assert!(report.makespan > 0.0);
    }

    #[test]
    fn striped_kernel_end_to_end_equals_scalar_sw_search() {
        // Selecting `striped` must change throughput only, never output:
        // the distributed striped search reproduces the sequential
        // scalar Smith–Waterman reference bit for bit.
        let (db, queries, mut cfg) = test_inputs();
        let scalar_reference = search_sequential(&db, &queries, &cfg);
        cfg.kernel = biodist_align::KernelKind::parse("striped").unwrap();
        let striped_reference = search_sequential(&db, &queries, &cfg);
        assert_eq!(striped_reference, scalar_reference);

        let mut server = Server::new(small_unit_sched());
        let pid = server.submit(build_problem(db, queries, &cfg));
        let (mut server, _) = run_threaded(server, 4);
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        assert_eq!(out.hits, scalar_reference);
        assert!(
            server.stats(pid).completed_units > 1,
            "search was actually split"
        );
    }

    #[test]
    fn chunking_respects_granularity_hint() {
        let (db, queries, cfg) = test_inputs();
        let kernel = AlignKernel::new(cfg.kernel, cfg.scheme.clone());
        let chunk_meta = Arc::new(chunk_table(&db));
        let mut dm = DsearchDm {
            db: Arc::new(db),
            queries: Arc::new(queries),
            kernel,
            chunk_meta,
            top_hits: 10,
            cost_scale: 1.0,
            cursor: 0,
            outstanding: 0,
            next_id: 0,
            merged: BTreeMap::new(),
            telemetry: Telemetry::default(),
        };
        let small = dm.next_unit(10_000.0).unwrap();
        let big = dm.next_unit(500_000.0).unwrap();
        assert!(
            big.cost_ops > 3.0 * small.cost_ops,
            "{} vs {}",
            big.cost_ops,
            small.cost_ops
        );
        // Each chunk covers at least one sequence even for tiny hints.
        let tiny = dm.next_unit(1.0).unwrap();
        assert!(tiny.cost_ops > 0.0);
    }

    #[test]
    fn chunks_partition_database_exactly_once() {
        let (db, queries, cfg) = test_inputs();
        let n = db.len();
        let kernel = AlignKernel::new(cfg.kernel, cfg.scheme.clone());
        let chunk_meta = Arc::new(chunk_table(&db));
        let mut dm = DsearchDm {
            db: Arc::new(db),
            queries: Arc::new(queries),
            kernel,
            chunk_meta,
            top_hits: 10,
            cost_scale: 1.0,
            cursor: 0,
            outstanding: 0,
            next_id: 0,
            merged: BTreeMap::new(),
            telemetry: Telemetry::default(),
        };
        let mut covered = vec![false; n];
        while let Some(unit) = dm.next_unit(100_000.0) {
            let u = unit.payload.downcast_ref::<DsearchUnit>().unwrap();
            assert_eq!(
                u.needs.len(),
                u.end - u.start,
                "one chunk reference per sequence"
            );
            for (i, c) in covered.iter_mut().enumerate().take(u.end).skip(u.start) {
                assert!(!*c, "sequence {i} issued twice");
                *c = true;
            }
        }
        assert!(covered.iter().all(|&c| c), "whole database must be covered");
    }

    #[test]
    fn wire_codec_round_trips_units_and_results() {
        let (db, _, _) = test_inputs();
        let meta = chunk_table(&db);
        let codec = DsearchCodec {
            db: Arc::new(db.clone()),
        };
        let unit = Payload::new(
            DsearchUnit {
                start: 3,
                end: 17,
                needs: meta[3..17].to_vec(),
                data: None,
            },
            16,
        );
        let bytes = codec.encode_unit(&unit).unwrap();
        let back = codec.decode_unit(&bytes).unwrap();
        let u = back.downcast_ref::<DsearchUnit>().unwrap();
        assert_eq!((u.start, u.end), (3, 17));
        assert_eq!(u.needs, meta[3..17].to_vec());
        assert!(u.data.is_none(), "decode yields the reference form");
        // An inverted range is rejected, not trusted.
        let mut w = biodist_core::ByteWriter::new();
        w.usize(9);
        w.usize(2);
        w.u32(0);
        assert!(codec.decode_unit(&w.into_bytes()).is_err());

        let hits = vec![
            Hit {
                query_id: "q0".into(),
                db_id: "db-4".into(),
                score: 123,
            },
            Hit {
                query_id: "q0".into(),
                db_id: "db-9".into(),
                score: -7,
            },
        ];
        let payload = Payload::new(hits.clone(), 96);
        let bytes = codec.encode_result(&payload).unwrap();
        let back = codec.decode_result(&bytes).unwrap();
        assert_eq!(back.downcast_ref::<Vec<Hit>>(), Some(&hits));
        assert!(codec.decode_result(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn chunks_serve_verify_and_hydrate_to_identical_sequences() {
        let (db, _, _) = test_inputs();
        let meta = chunk_table(&db);
        let codec = DsearchCodec {
            db: Arc::new(db.clone()),
        };
        // Every served chunk matches its advertised digest and size.
        for need in &meta {
            let bytes = codec.encode_chunk(need.chunk).unwrap();
            assert_eq!(biodist_core::chunk_digest(&bytes), need.digest);
            assert_eq!(bytes.len() as u64, need.bytes);
        }
        assert!(codec.encode_chunk(db.len() as u64).is_err());

        // Hydrating a decoded unit from served chunks reproduces the
        // exact subject sequences the in-process algorithm would scan.
        let unit = Payload::new(
            DsearchUnit {
                start: 2,
                end: 7,
                needs: meta[2..7].to_vec(),
                data: None,
            },
            16,
        );
        let decoded = codec
            .decode_unit(&codec.encode_unit(&unit).unwrap())
            .unwrap();
        let fetched: Vec<(u64, Arc<Vec<u8>>)> = meta[2..7]
            .iter()
            .map(|n| (n.chunk, Arc::new(codec.encode_chunk(n.chunk).unwrap())))
            .collect();
        let hydrated = codec.hydrate_unit(decoded, &fetched).unwrap();
        let u = hydrated.downcast_ref::<DsearchUnit>().unwrap();
        let data = u.data.as_ref().expect("hydrated data");
        for (got, want) in data.iter().zip(&db[2..7]) {
            assert_eq!(got.id, want.id);
            assert_eq!(got.codes(), want.codes());
        }
        // A short or reordered chunk list is rejected.
        let unit2 = codec.encode_unit(&unit).unwrap();
        let decoded2 = codec.decode_unit(&unit2).unwrap();
        assert!(codec.hydrate_unit(decoded2, &fetched[1..]).is_err());
    }

    #[test]
    fn distributed_over_tcp_equals_sequential() {
        let (db, queries, cfg) = test_inputs();
        let expected = search_sequential(&db, &queries, &cfg);
        let mut server = Server::new(small_unit_sched());
        let pid = server.submit(build_problem(db, queries, &cfg));
        let (mut server, _) = biodist_core::run_tcp(server, 4);
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        assert_eq!(out.hits, expected);
        assert!(
            server.stats(pid).completed_units > 1,
            "search was actually split"
        );
    }

    #[test]
    fn planted_family_found_by_distributed_search() {
        let query = random_sequence(Alphabet::Protein, "q0", 80, 11);
        let fam = FamilySpec {
            copies: 3,
            substitution_rate: 0.1,
            indel_rate: 0.01,
        };
        let db = SyntheticDb::generate_with_family(&DbSpec::protein_demo(30, 90), &query, &fam, 12);
        let planted = db.planted_ids.clone();
        let cfg = DsearchConfig::protein_default();
        let mut server = Server::new(small_unit_sched());
        let pid = server.submit(build_problem(db.sequences, vec![query], &cfg));
        let (mut server, _) = run_threaded(server, 4);
        let out = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        let top3: Vec<&str> = out.hits["q0"][..3]
            .iter()
            .map(|h| h.db_id.as_str())
            .collect();
        for id in &planted {
            assert!(top3.contains(&id.as_str()), "{id} not in top 3");
        }
    }
}
