//! Sequential reference search.
//!
//! The ground truth the distributed search must reproduce exactly:
//! every query scored against every database sequence, hits collected
//! into the same deterministic top-K order.

use crate::config::DsearchConfig;
use biodist_align::{AlignKernel, Hit, TopK};
use biodist_bioseq::Sequence;
use std::collections::BTreeMap;

/// Runs the search sequentially; returns hits grouped per query id, each
/// list best-first.
pub fn search_sequential(
    database: &[Sequence],
    queries: &[Sequence],
    config: &DsearchConfig,
) -> BTreeMap<String, Vec<Hit>> {
    let kernel = AlignKernel::new(config.kernel, config.scheme.clone());
    // One reusable profile per query (free for non-striped kernels).
    let prepared: Vec<_> = queries.iter().map(|q| kernel.prepare(q)).collect();
    let mut per_query: BTreeMap<String, TopK> = queries
        .iter()
        .map(|q| (q.id.clone(), TopK::new(config.top_hits)))
        .collect();
    for subject in database {
        for (query, prep) in queries.iter().zip(&prepared) {
            let score = kernel.score_prepared(query, prep, subject);
            per_query
                .get_mut(&query.id)
                .expect("query registered above")
                .offer(Hit {
                    query_id: query.id.clone(),
                    db_id: subject.id.clone(),
                    score,
                });
        }
    }
    per_query
        .into_iter()
        .map(|(q, topk)| (q, topk.into_sorted()))
        .collect()
}

/// Total DP-cell cost of the whole search under `config`'s kernel —
/// the `T(1)` numerator of the speedup figures.
pub fn total_cost_cells(
    database: &[Sequence],
    queries: &[Sequence],
    config: &DsearchConfig,
) -> u64 {
    let kernel = AlignKernel::new(config.kernel, config.scheme.clone());
    database
        .iter()
        .map(|s| queries.iter().map(|q| kernel.cost_cells(q, s)).sum::<u64>())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_bioseq::synth::{random_sequence, DbSpec, FamilySpec, SyntheticDb};
    use biodist_bioseq::Alphabet;

    #[test]
    fn planted_homologs_rank_first() {
        let query = random_sequence(Alphabet::Protein, "q0", 120, 31);
        let fam = FamilySpec {
            copies: 3,
            substitution_rate: 0.1,
            indel_rate: 0.01,
        };
        let db =
            SyntheticDb::generate_with_family(&DbSpec::protein_demo(40, 110), &query, &fam, 32);
        let cfg = DsearchConfig::protein_default();
        let hits = search_sequential(&db.sequences, &[query], &cfg);
        let q_hits = &hits["q0"];
        assert_eq!(q_hits.len(), 25.min(db.sequences.len()));
        // The three planted family members must be the top three hits.
        let top3: Vec<&str> = q_hits[..3].iter().map(|h| h.db_id.as_str()).collect();
        for id in &db.planted_ids {
            assert!(
                top3.contains(&id.as_str()),
                "{id} missing from top 3: {top3:?}"
            );
        }
    }

    #[test]
    fn hit_count_is_bounded_by_k_and_database() {
        let query = random_sequence(Alphabet::Dna, "q", 50, 1);
        let db = SyntheticDb::generate(&DbSpec::dna_demo(5, 60), 2);
        let mut cfg = DsearchConfig::parse("alphabet = dna\ngap_open=10\n").unwrap();
        cfg.top_hits = 3;
        let hits = search_sequential(&db.sequences, &[query], &cfg);
        assert_eq!(hits["q"].len(), 3);
    }

    #[test]
    fn multiple_queries_get_independent_hit_lists() {
        let q1 = random_sequence(Alphabet::Dna, "q1", 40, 5);
        let q2 = random_sequence(Alphabet::Dna, "q2", 40, 6);
        let db = SyntheticDb::generate(&DbSpec::dna_demo(10, 50), 7);
        let cfg = DsearchConfig::parse("alphabet = dna\n").unwrap();
        let hits = search_sequential(&db.sequences, &[q1, q2], &cfg);
        assert_eq!(hits.len(), 2);
        assert!(hits.contains_key("q1") && hits.contains_key("q2"));
    }

    #[test]
    fn cost_model_sums_all_pairs() {
        let q = random_sequence(Alphabet::Dna, "q", 10, 1);
        let db = SyntheticDb::generate(
            &DbSpec {
                alphabet: Alphabet::Dna,
                num_sequences: 4,
                mean_len: 20,
                len_spread: 0,
                composition: None,
            },
            3,
        );
        let cfg = DsearchConfig::parse("alphabet = dna\nalgorithm = sw\n").unwrap();
        assert_eq!(total_cost_cells(&db.sequences, &[q], &cfg), 4 * 10 * 20);
    }
}
