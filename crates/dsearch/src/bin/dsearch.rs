//! `dsearch` — the command-line tool (paper §3.1).
//!
//! ```text
//! dsearch --db <db.fasta> --query <queries.fasta> [--config <file>]
//!         [--workers N] [--output <hits.tsv>] [--evalues] [--verify]
//! ```
//!
//! Inputs match the paper exactly: "a FASTA database file, a FASTA
//! query sequences file, a scoring scheme, and a configuration file."
//! The search runs distributed on `--workers` OS threads; `--verify`
//! additionally runs the sequential reference and asserts equality.

use biodist_core::{run_threaded, SchedulerConfig, Server};
use biodist_dsearch::{
    build_problem, search_sequential, DsearchConfig, ScoreStatistics, SearchOutput,
};
use std::process::ExitCode;

struct Args {
    db: String,
    query: String,
    config: Option<String>,
    workers: usize,
    output: Option<String>,
    evalues: bool,
    verify: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        db: String::new(),
        query: String::new(),
        config: None,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        output: None,
        evalues: false,
        verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--db" => args.db = value("--db")?,
            "--query" => args.query = value("--query")?,
            "--config" => args.config = Some(value("--config")?),
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers must be a positive integer".to_string())?
            }
            "--output" => args.output = Some(value("--output")?),
            "--evalues" => args.evalues = true,
            "--verify" => args.verify = true,
            "--help" | "-h" => {
                println!(
                    "usage: dsearch --db <db.fasta> --query <queries.fasta> \
                     [--config <file>] [--workers N] [--output <hits.tsv>] \
                     [--evalues] [--verify]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.db.is_empty() || args.query.is_empty() {
        return Err("--db and --query are required (see --help)".into());
    }
    if args.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;

    let config = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config `{path}`: {e}"))?;
            DsearchConfig::parse(&text)?
        }
        None => DsearchConfig::protein_default(),
    };
    let alphabet = config.scheme.alphabet();

    let db_text = std::fs::read_to_string(&args.db)
        .map_err(|e| format!("cannot read database `{}`: {e}", args.db))?;
    let database = biodist_bioseq::parse_fasta(&db_text, alphabet).map_err(|e| e.to_string())?;
    let q_text = std::fs::read_to_string(&args.query)
        .map_err(|e| format!("cannot read queries `{}`: {e}", args.query))?;
    let queries = biodist_bioseq::parse_fasta(&q_text, alphabet).map_err(|e| e.to_string())?;
    if database.is_empty() || queries.is_empty() {
        return Err("database and query files must contain sequences".into());
    }
    eprintln!(
        "dsearch: {} database sequences, {} queries, kernel {}, {} workers",
        database.len(),
        queries.len(),
        config.kernel.name(),
        args.workers
    );

    let mut server = Server::new(SchedulerConfig {
        // Wall-clock backend: ~20 ms units keep all workers fed.
        target_unit_secs: 0.02,
        prior_ops_per_sec: 2e8,
        min_unit_ops: 1.0,
        ..Default::default()
    });
    let pid = server.submit(build_problem(database.clone(), queries.clone(), &config));
    let (mut server, elapsed) = run_threaded(server, args.workers);
    let out = server
        .take_output(pid)
        .expect("search completed")
        .into_inner::<SearchOutput>();
    let stats = server.stats(pid);
    eprintln!(
        "done in {elapsed:.2} s ({} units, {} redundant)",
        stats.completed_units, stats.redundant_dispatches
    );

    if args.verify {
        eprintln!("verifying against the sequential reference...");
        let expected = search_sequential(&database, &queries, &config);
        if out.hits != expected {
            return Err("distributed hits differ from sequential reference".into());
        }
        eprintln!("verified: distributed == sequential");
    }

    // Optional Gumbel E-values, fitted per query against a background of
    // every database sequence's score (requires a full rescan with
    // top_hits = |db|, so it is opt-in).
    let stats_per_query = if args.evalues {
        let mut bg_config = config.clone();
        bg_config.top_hits = database.len();
        let all = search_sequential(&database, &queries, &bg_config);
        let fitted: std::collections::BTreeMap<String, ScoreStatistics> = all
            .iter()
            .filter(|(_, hits)| hits.len() >= 10)
            .map(|(q, hits)| {
                let scores: Vec<i32> = hits.iter().map(|h| h.score).collect();
                (q.clone(), ScoreStatistics::fit_trimmed(&scores, 0.02))
            })
            .collect();
        Some(fitted)
    } else {
        None
    };

    let mut report = String::from(if args.evalues {
        "query\trank\tsubject\tscore\tevalue\n"
    } else {
        "query\trank\tsubject\tscore\n"
    });
    for (query, hits) in &out.hits {
        for (rank, hit) in hits.iter().enumerate() {
            match stats_per_query.as_ref().and_then(|m| m.get(query)) {
                Some(st) => {
                    let e = st.e_value(hit.score, database.len());
                    report.push_str(&format!(
                        "{query}\t{}\t{}\t{}\t{e:.3e}\n",
                        rank + 1,
                        hit.db_id,
                        hit.score
                    ));
                }
                None => report.push_str(&format!(
                    "{query}\t{}\t{}\t{}\n",
                    rank + 1,
                    hit.db_id,
                    hit.score
                )),
            }
        }
    }
    match &args.output {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("dsearch: error: {msg}");
            ExitCode::FAILURE
        }
    }
}
