//! Hit-significance statistics.
//!
//! Local alignment scores of a query against *unrelated* database
//! sequences follow an extreme-value (Gumbel) distribution — the basis
//! of every search tool's E-values. This module fits the Gumbel null by
//! the method of moments on the bulk of the score distribution (the top
//! tail, where true homologs live, is trimmed first) and converts raw
//! scores into p-values and database-size-corrected E-values, so
//! DSEARCH reports *significance*, not just ranks.

use biodist_align::Hit;

/// Euler–Mascheroni constant (Gumbel mean offset).
const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// A fitted Gumbel null distribution for alignment scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreStatistics {
    /// Scale parameter λ (inverse width).
    pub lambda: f64,
    /// Location parameter μ (mode).
    pub mu: f64,
    /// Number of scores the fit used.
    pub sample_size: usize,
}

impl ScoreStatistics {
    /// Fits a Gumbel by the method of moments:
    /// `λ = π / (σ√6)`, `μ = mean − γ/λ`.
    ///
    /// # Panics
    /// Panics with fewer than 10 scores or zero variance (no fit is
    /// meaningful; callers should fall back to rank-only reporting).
    pub fn fit(scores: &[i32]) -> Self {
        assert!(scores.len() >= 10, "need at least 10 background scores");
        let n = scores.len() as f64;
        let mean = scores.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = scores
            .iter()
            .map(|&s| (s as f64 - mean) * (s as f64 - mean))
            .sum::<f64>()
            / (n - 1.0);
        assert!(var > 0.0, "background scores have zero variance");
        let lambda = std::f64::consts::PI / (var.sqrt() * 6.0f64.sqrt());
        let mu = mean - EULER_GAMMA / lambda;
        Self {
            lambda,
            mu,
            sample_size: scores.len(),
        }
    }

    /// Fits the null after trimming the top `trim_fraction` of scores
    /// (which may contain true homologs) — the standard robustification.
    pub fn fit_trimmed(scores: &[i32], trim_fraction: f64) -> Self {
        assert!(
            (0.0..0.5).contains(&trim_fraction),
            "trim fraction must be in [0, 0.5)"
        );
        let mut sorted = scores.to_vec();
        sorted.sort_unstable();
        let keep = sorted.len() - (sorted.len() as f64 * trim_fraction).ceil() as usize;
        Self::fit(&sorted[..keep.max(10).min(sorted.len())])
    }

    /// P(S ≥ score) under the fitted null: `1 − exp(−exp(−λ(s−μ)))`.
    pub fn p_value(&self, score: i32) -> f64 {
        let z = self.lambda * (score as f64 - self.mu);
        // Numerically stable: for large z, 1 − exp(−e^{−z}) ≈ e^{−z}.
        let t = (-z).exp();
        if t < 1e-8 {
            t
        } else {
            1.0 - (-t).exp()
        }
    }

    /// E-value: expected number of hits this good in a database of
    /// `database_size` sequences.
    pub fn e_value(&self, score: i32, database_size: usize) -> f64 {
        self.p_value(score) * database_size as f64
    }
}

/// A hit annotated with its significance under a fitted null.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredHit {
    /// The raw hit.
    pub hit: Hit,
    /// P(S ≥ score) under the null.
    pub p_value: f64,
    /// Database-size-corrected expectation.
    pub e_value: f64,
}

/// Publishes a fitted null into the telemetry registry: gauges
/// `dsearch.gumbel_lambda` / `dsearch.gumbel_mu` /
/// `dsearch.gumbel_sample_size`, so run reports can show the
/// significance model alongside throughput without re-fitting.
pub fn record_fit_metrics(stats: &ScoreStatistics, telemetry: &biodist_core::Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.gauge_set("dsearch.gumbel_lambda", stats.lambda);
    telemetry.gauge_set("dsearch.gumbel_mu", stats.mu);
    telemetry.gauge_set("dsearch.gumbel_sample_size", stats.sample_size as f64);
}

/// Annotates hits with significance, fitting the null from
/// `background_scores` (typically: every score the search computed,
/// top 2% trimmed). Hits are returned in the input order.
pub fn annotate_hits(
    hits: &[Hit],
    background_scores: &[i32],
    database_size: usize,
) -> Vec<ScoredHit> {
    let stats = ScoreStatistics::fit_trimmed(background_scores, 0.02);
    hits.iter()
        .map(|h| ScoredHit {
            hit: h.clone(),
            p_value: stats.p_value(h.score),
            e_value: stats.e_value(h.score, database_size),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use biodist_util::rng::{Rng, Xoshiro256StarStar};

    /// Draws Gumbel(μ, λ) samples by inversion.
    fn gumbel_samples(mu: f64, lambda: f64, n: usize, seed: u64) -> Vec<i32> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n)
            .map(|_| {
                let u = rng.next_f64().max(1e-12);
                let x = mu - (-(u.ln())).ln() / lambda;
                x.round() as i32
            })
            .collect()
    }

    #[test]
    fn fit_metrics_land_in_the_registry() {
        let samples = gumbel_samples(35.0, 0.28, 2_000, 9);
        let fit = ScoreStatistics::fit(&samples);
        let tel = biodist_core::Telemetry::enabled();
        record_fit_metrics(&fit, &tel);
        let snap = tel.metrics_snapshot();
        assert_eq!(snap.gauge("dsearch.gumbel_lambda"), Some(fit.lambda));
        assert_eq!(snap.gauge("dsearch.gumbel_mu"), Some(fit.mu));
        assert_eq!(
            snap.gauge("dsearch.gumbel_sample_size"),
            Some(fit.sample_size as f64)
        );
        // A disabled handle records nothing and panics nowhere.
        record_fit_metrics(&fit, &biodist_core::Telemetry::disabled());
    }

    #[test]
    fn moment_fit_recovers_gumbel_parameters() {
        let (mu, lambda) = (40.0, 0.25);
        let samples = gumbel_samples(mu, lambda, 20_000, 1);
        let fit = ScoreStatistics::fit(&samples);
        assert!((fit.mu - mu).abs() < 1.0, "mu {} vs {}", fit.mu, mu);
        assert!(
            (fit.lambda - lambda).abs() < 0.02,
            "lambda {} vs {}",
            fit.lambda,
            lambda
        );
    }

    #[test]
    fn p_values_are_probabilities_and_monotone() {
        let samples = gumbel_samples(30.0, 0.3, 5_000, 2);
        let fit = ScoreStatistics::fit(&samples);
        let mut prev = 1.0;
        for s in 0..200 {
            let p = fit.p_value(s);
            assert!((0.0..=1.0).contains(&p), "p({s}) = {p}");
            assert!(p <= prev + 1e-12, "p must not increase with score");
            prev = p;
        }
    }

    #[test]
    fn p_value_calibration_matches_empirical_tail() {
        let samples = gumbel_samples(30.0, 0.3, 50_000, 3);
        let fit = ScoreStatistics::fit(&samples);
        // Empirical P(S >= 45) vs fitted.
        let threshold = 45;
        let empirical =
            samples.iter().filter(|&&s| s >= threshold).count() as f64 / samples.len() as f64;
        let fitted = fit.p_value(threshold);
        assert!(
            (empirical - fitted).abs() < 0.01,
            "empirical {empirical} vs fitted {fitted}"
        );
    }

    #[test]
    fn outlier_scores_get_tiny_p_values() {
        let samples = gumbel_samples(30.0, 0.3, 5_000, 4);
        let fit = ScoreStatistics::fit_trimmed(&samples, 0.02);
        assert!(fit.p_value(150) < 1e-10);
        assert!(fit.e_value(150, 1_000_000) < 1e-3);
    }

    #[test]
    fn trimming_is_robust_to_planted_homologs() {
        let mut samples = gumbel_samples(30.0, 0.3, 5_000, 5);
        // Contaminate with huge homolog scores.
        samples.extend(std::iter::repeat_n(500, 50));
        let clean = ScoreStatistics::fit_trimmed(&samples, 0.02);
        let naive = ScoreStatistics::fit(&samples);
        // The naive fit's width blows up; the trimmed fit stays close.
        assert!(
            (clean.lambda - 0.3).abs() < 0.05,
            "trimmed lambda {}",
            clean.lambda
        );
        assert!(
            naive.lambda < clean.lambda,
            "contamination must widen the naive fit"
        );
    }

    #[test]
    fn annotate_hits_orders_and_sizes_correctly() {
        let samples = gumbel_samples(25.0, 0.3, 2_000, 6);
        let hits = vec![
            Hit {
                query_id: "q".into(),
                db_id: "strong".into(),
                score: 200,
            },
            Hit {
                query_id: "q".into(),
                db_id: "weak".into(),
                score: 26,
            },
        ];
        let annotated = annotate_hits(&hits, &samples, 10_000);
        assert_eq!(annotated.len(), 2);
        assert!(
            annotated[0].e_value < 1e-6,
            "strong hit must be significant"
        );
        assert!(
            annotated[1].e_value > 1.0,
            "near-mode hit is expected by chance"
        );
        assert!(annotated[0].p_value < annotated[1].p_value);
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn fit_rejects_tiny_samples() {
        ScoreStatistics::fit(&[1, 2, 3]);
    }
}
