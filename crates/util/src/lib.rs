//! # biodist-util
//!
//! Shared low-level utilities for the `biodist` workspace: deterministic
//! pseudo-random number generation, one-dimensional optimisation,
//! streaming statistics, the `key = value` configuration format used by
//! DSEARCH and DPRml, and small table/CSV writers for the experiment
//! harnesses.
//!
//! Everything in this crate is dependency-free and fully deterministic:
//! the simulator and both applications derive all randomness from the
//! seeded generators defined in [`rng`], which makes every figure in
//! `EXPERIMENTS.md` bit-reproducible.

pub mod config;
pub mod optim;
pub mod rng;
pub mod stats;
pub mod table;

pub use config::{Config, ConfigError};
pub use optim::{brent_minimize, golden_section_minimize, BrentResult};
pub use rng::{Rng, SplitMix64, Xoshiro256StarStar};
pub use stats::{Ewma, OnlineStats};
pub use table::Table;
