//! Experiment output tables.
//!
//! The figure harnesses in `biodist-bench` print the series the paper
//! plots and also persist them as CSV next to `EXPERIMENTS.md`. This
//! module provides a tiny column-oriented table that renders both
//! formats, so harness code stays declarative.

use std::fmt::Write as _;
use std::path::Path;

/// A simple rows-of-cells table with a header.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column names.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "Table: need at least one column");
        Self {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of preformatted cells; must match the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "Table `{}`: row width {} != column count {}",
            self.title,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row of numbers formatted with `precision` decimals.
    pub fn push_numeric_row(&mut self, values: &[f64], precision: usize) {
        self.push_row(values.iter().map(|v| format!("{v:.precision$}")).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, human-readable text table.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders RFC-4180-style CSV (cells containing commas/quotes/newlines
    /// are quoted).
    pub fn render_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV rendering to `path`.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("speedup", &["processors", "speedup"]);
        t.push_numeric_row(&[1.0, 1.0], 2);
        t.push_numeric_row(&[8.0, 7.43], 2);
        t
    }

    #[test]
    fn text_rendering_is_aligned() {
        let text = sample().render_text();
        assert!(text.contains("== speedup =="));
        assert!(text.contains("processors  speedup"));
        assert!(text.contains("      8.00     7.43"));
    }

    #[test]
    fn csv_rendering_round_trips_simple_cells() {
        let csv = sample().render_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("processors,speedup"));
        assert_eq!(lines.next(), Some("1.00,1.00"));
        assert_eq!(lines.next(), Some("8.00,7.43"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["name", "note"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"a,b\",\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn len_and_empty_track_rows() {
        let mut t = Table::new("x", &["a"]);
        assert!(t.is_empty());
        t.push_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
