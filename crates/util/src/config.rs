//! The `key = value` configuration format.
//!
//! Both DSEARCH and DPRml are tailored through "a straightforward
//! configuration file" (paper §3.1/§3.2). This module implements that
//! format: one `key = value` pair per line, `#` comments, blank lines
//! ignored, keys case-insensitive. Typed accessors return a
//! [`ConfigError`] naming the offending key so application-level error
//! messages stay useful.

use std::collections::BTreeMap;
use std::fmt;

/// Error raised by configuration parsing or typed access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line was not of the form `key = value`.
    Malformed { line_number: usize, line: String },
    /// The same key appeared twice.
    Duplicate { key: String },
    /// A required key was absent.
    Missing { key: String },
    /// A value could not be parsed as the requested type.
    BadValue {
        key: String,
        value: String,
        expected: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Malformed { line_number, line } => {
                write!(
                    f,
                    "line {line_number}: expected `key = value`, got `{line}`"
                )
            }
            ConfigError::Duplicate { key } => write!(f, "duplicate key `{key}`"),
            ConfigError::Missing { key } => write!(f, "missing required key `{key}`"),
            ConfigError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "key `{key}`: cannot parse `{value}` as {expected}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// An immutable bag of `key = value` settings.
///
/// ```
/// use biodist_util::config::Config;
/// let cfg = Config::parse("algorithm = sw  # kernel\ntop_hits = 25\n").unwrap();
/// assert_eq!(cfg.get("Algorithm"), Some("sw"));
/// assert_eq!(cfg.get_u64_or("top_hits", 10).unwrap(), 25);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    entries: BTreeMap<String, String>,
}

impl Config {
    /// Parses the configuration text format.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut entries = BTreeMap::new();
        for (i, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError::Malformed {
                    line_number: i + 1,
                    line: raw.to_string(),
                });
            };
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if key.is_empty() {
                return Err(ConfigError::Malformed {
                    line_number: i + 1,
                    line: raw.to_string(),
                });
            }
            if entries.insert(key.clone(), value).is_some() {
                return Err(ConfigError::Duplicate { key });
            }
        }
        Ok(Self { entries })
    }

    /// Builds a configuration from `(key, value)` pairs (mainly tests).
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        let entries = pairs
            .into_iter()
            .map(|(k, v)| (k.to_ascii_lowercase(), v.to_string()))
            .collect();
        Self { entries }
    }

    /// Raw string lookup (key is case-insensitive).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .get(&key.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// Returns the string value for a required key.
    pub fn require(&self, key: &str) -> Result<&str, ConfigError> {
        self.get(key).ok_or_else(|| ConfigError::Missing {
            key: key.to_string(),
        })
    }

    fn parse_as<T: std::str::FromStr>(
        &self,
        key: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ConfigError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v.parse::<T>().map(Some).map_err(|_| ConfigError::BadValue {
                key: key.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// Integer value with a default.
    pub fn get_u64_or(&self, key: &str, default: u64) -> Result<u64, ConfigError> {
        Ok(self
            .parse_as::<u64>(key, "an unsigned integer")?
            .unwrap_or(default))
    }

    /// Float value with a default.
    pub fn get_f64_or(&self, key: &str, default: f64) -> Result<f64, ConfigError> {
        Ok(self.parse_as::<f64>(key, "a number")?.unwrap_or(default))
    }

    /// Boolean value with a default. Accepts `true/false/yes/no/on/off/1/0`.
    pub fn get_bool_or(&self, key: &str, default: bool) -> Result<bool, ConfigError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => match v.to_ascii_lowercase().as_str() {
                "true" | "yes" | "on" | "1" => Ok(true),
                "false" | "no" | "off" | "0" => Ok(false),
                _ => Err(ConfigError::BadValue {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "a boolean (true/false/yes/no/on/off/1/0)",
                }),
            },
        }
    }

    /// Number of defined keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no keys are defined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typical_file() {
        let cfg = Config::parse(
            "# DSEARCH configuration\n\
             algorithm = smith-waterman\n\
             matrix    = blosum62   # protein scoring\n\
             gap_open  = 11\n\
             gap_extend = 1\n\
             \n\
             top_hits = 25\n",
        )
        .unwrap();
        assert_eq!(cfg.get("algorithm"), Some("smith-waterman"));
        assert_eq!(cfg.get("MATRIX"), Some("blosum62"));
        assert_eq!(cfg.get_u64_or("top_hits", 10).unwrap(), 25);
        assert_eq!(cfg.get_u64_or("absent", 10).unwrap(), 10);
        assert_eq!(cfg.len(), 5);
    }

    #[test]
    fn comment_only_and_blank_lines_are_ignored() {
        let cfg = Config::parse("# nothing\n\n   \n# more\n").unwrap();
        assert!(cfg.is_empty());
    }

    #[test]
    fn value_may_contain_equals_sign() {
        let cfg = Config::parse("expr = a=b\n").unwrap();
        assert_eq!(cfg.get("expr"), Some("a=b"));
    }

    #[test]
    fn malformed_line_is_reported_with_number() {
        let err = Config::parse("ok = 1\nnot a pair\n").unwrap_err();
        assert_eq!(
            err,
            ConfigError::Malformed {
                line_number: 2,
                line: "not a pair".into()
            }
        );
    }

    #[test]
    fn duplicate_keys_are_rejected_case_insensitively() {
        let err = Config::parse("Key = 1\nKEY = 2\n").unwrap_err();
        assert_eq!(err, ConfigError::Duplicate { key: "key".into() });
    }

    #[test]
    fn require_names_missing_key() {
        let cfg = Config::parse("").unwrap();
        let err = cfg.require("database").unwrap_err();
        assert_eq!(
            err,
            ConfigError::Missing {
                key: "database".into()
            }
        );
    }

    #[test]
    fn typed_accessors_reject_garbage() {
        let cfg = Config::parse("n = twelve\nb = maybe\n").unwrap();
        assert!(matches!(
            cfg.get_u64_or("n", 0),
            Err(ConfigError::BadValue { .. })
        ));
        assert!(matches!(
            cfg.get_bool_or("b", false),
            Err(ConfigError::BadValue { .. })
        ));
    }

    #[test]
    fn booleans_accept_all_documented_spellings() {
        let cfg = Config::parse("a=yes\nb=OFF\nc=1\nd=False\n").unwrap();
        assert!(cfg.get_bool_or("a", false).unwrap());
        assert!(!cfg.get_bool_or("b", true).unwrap());
        assert!(cfg.get_bool_or("c", false).unwrap());
        assert!(!cfg.get_bool_or("d", true).unwrap());
    }

    #[test]
    fn floats_parse_with_default_fallback() {
        let cfg = Config::parse("alpha = 0.5\n").unwrap();
        assert_eq!(cfg.get_f64_or("alpha", 1.0).unwrap(), 0.5);
        assert_eq!(cfg.get_f64_or("beta", 1.0).unwrap(), 1.0);
    }

    #[test]
    fn error_display_is_informative() {
        let err = ConfigError::BadValue {
            key: "gap".into(),
            value: "x".into(),
            expected: "a number",
        };
        assert_eq!(err.to_string(), "key `gap`: cannot parse `x` as a number");
    }
}
