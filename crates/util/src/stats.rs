//! Streaming statistics.
//!
//! The adaptive scheduler tracks each donor machine's observed
//! throughput with an exponentially weighted moving average ([`Ewma`]),
//! and the experiment harnesses summarise repeated runs with Welford's
//! online mean/variance ([`OnlineStats`]).

/// Exponentially weighted moving average.
///
/// `alpha` is the weight of the newest observation; the scheduler uses a
/// fairly reactive `alpha ≈ 0.3` so a donor machine that becomes busy
/// with owner activity is demoted within a few work units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "Ewma: alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Folds in a new observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        next
    }

    /// Current average, or `None` before the first observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current average, or `default` before the first observation.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Discards all history.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Welford's online algorithm for mean and variance, plus min/max.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_observation_is_identity() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
    }

    #[test]
    fn ewma_converges_toward_constant_input() {
        let mut e = Ewma::new(0.5);
        e.update(0.0);
        for _ in 0..50 {
            e.update(8.0);
        }
        assert!((e.value().unwrap() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_alpha_one_tracks_latest() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        e.update(7.0);
        assert_eq!(e.value(), Some(7.0));
    }

    #[test]
    fn ewma_reset_forgets() {
        let mut e = Ewma::new(0.2);
        e.update(5.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(1.5), 1.5);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn online_stats_match_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }
}
