//! Deterministic pseudo-random number generators.
//!
//! The workspace deliberately avoids external RNG crates so that every
//! experiment is reproducible from a single `u64` seed across Rust and
//! dependency versions. Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and for
//!   places where statistical quality is secondary (Vigna, 2015).
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman &
//!   Vigna, 2018) with 256 bits of state, used everywhere randomness
//!   affects results: synthetic databases, availability traces,
//!   sequence evolution, and tie-breaking in tree search.
//!
//! Both implement the object-safe [`Rng`] trait, so code can take
//! `&mut dyn Rng` without committing to a generator.

/// Minimal object-safe random number generator interface.
///
/// All derived draws (floats, ranges, shuffles) are provided as default
/// methods on top of [`Rng::next_u64`], so every implementor yields an
/// identical stream of derived values for an identical `u64` stream.
pub trait Rng {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in the half-open interval `[0, 1)`.
    ///
    /// Uses the top 53 bits, the standard construction that yields every
    /// representable multiple of 2⁻⁵³ with equal probability.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below: bound must be non-zero");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only entered when bound does not divide 2^64.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range: lo must not exceed hi");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(span + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p` of returning `true`.
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed draw with the given `mean` (> 0).
    ///
    /// Used by the availability-trace generator for sojourn times.
    fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "next_exp: mean must be positive");
        // next_f64 is in [0,1); use 1-u in (0,1] so ln() is finite.
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Standard normal draw via the Box–Muller transform (one of the
    /// pair is discarded; determinism matters more than throughput here).
    fn next_gaussian(&mut self) -> f64 {
        let u1 = 1.0 - self.next_f64(); // (0,1]
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Draws an index from a discrete distribution given by `weights`.
    ///
    /// Weights must be non-negative and sum to a positive value.
    fn next_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "next_weighted: weights must sum to a positive finite value"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            debug_assert!(w >= 0.0, "next_weighted: negative weight");
            if target < w {
                return i;
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("next_weighted: at least one positive weight")
    }
}

/// Fisher–Yates shuffle driven by any [`Rng`].
pub fn shuffle<T>(items: &mut [T], rng: &mut dyn Rng) {
    for i in (1..items.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        items.swap(i, j);
    }
}

/// Samples `k` distinct indices from `0..n` (reservoir sampling).
///
/// The returned indices are in ascending order of first selection; callers
/// that need uniform order should shuffle afterwards.
pub fn sample_indices(n: usize, k: usize, rng: &mut dyn Rng) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k must not exceed n");
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = rng.next_below(i as u64 + 1) as usize;
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir
}

/// SplitMix64 generator (Vigna 2015). Passes BigCrush; period 2⁶⁴.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`], and for cheap decorrelated sub-streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed. Any value, including 0, is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** generator (Blackman & Vigna 2018). Period 2²⁵⁶−1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` through SplitMix64, the
    /// seeding procedure recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // The all-zero state is a fixed point; SplitMix64 cannot emit
        // four consecutive zeros from any seed, but guard regardless.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derives an independent stream for a named sub-component.
    ///
    /// Mixing the label through SplitMix64 gives decorrelated streams so
    /// e.g. each simulated machine owns its own generator and inserting a
    /// machine never perturbs another machine's trace.
    pub fn derive(&self, stream: u64) -> Self {
        let mut sm = SplitMix64::new(self.s[0] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        Self { s }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 0 from the public-domain C source.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = Xoshiro256StarStar::new(42);
        let mut b = Xoshiro256StarStar::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256StarStar::new(43);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn derived_streams_differ_from_parent_and_each_other() {
        let parent = Xoshiro256StarStar::new(7);
        let mut s1 = parent.derive(1);
        let mut s2 = parent.derive(2);
        let mut p = parent;
        let (a, b, c) = (p.next_u64(), s1.next_u64(), s2.next_u64());
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_small_ranges() {
        let mut rng = Xoshiro256StarStar::new(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_range_hits_both_endpoints() {
        let mut rng = Xoshiro256StarStar::new(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2_000 {
            match rng.next_range(10, 12) {
                10 => lo_seen = true,
                12 => hi_seen = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean} too far from 3");
    }

    #[test]
    fn gaussian_moments_are_close() {
        let mut rng = Xoshiro256StarStar::new(6);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn weighted_draw_respects_zero_weights() {
        let mut rng = Xoshiro256StarStar::new(8);
        for _ in 0..1_000 {
            let i = rng.next_weighted(&[0.0, 2.0, 0.0, 1.0]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_draw_frequencies_track_weights() {
        let mut rng = Xoshiro256StarStar::new(13);
        let mut counts = [0u32; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[rng.next_weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        let f1 = counts[1] as f64 / n as f64;
        let f2 = counts[2] as f64 / n as f64;
        assert!((f1 - 2.0 / 6.0).abs() < 0.01);
        assert!((f2 - 3.0 / 6.0).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = Xoshiro256StarStar::new(4);
        let sample = sample_indices(100, 20, &mut rng);
        assert_eq!(sample.len(), 20);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sample.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        let mut rng = SplitMix64::new(0);
        rng.next_below(0);
    }
}
