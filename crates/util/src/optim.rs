//! One-dimensional function minimisation.
//!
//! Branch-length optimisation in the phylogenetics crate repeatedly
//! minimises the negative log-likelihood along a single branch, for which
//! Brent's method (parabolic interpolation with a golden-section
//! fallback) is the standard tool — it is what fastDNAml and PAL use.

/// Result of a one-dimensional minimisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrentResult {
    /// Abscissa of the located minimum.
    pub xmin: f64,
    /// Function value at [`BrentResult::xmin`].
    pub fmin: f64,
    /// Number of function evaluations performed.
    pub evaluations: u32,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

const GOLDEN: f64 = 0.381_966_011_250_105_1; // (3 - sqrt(5)) / 2

/// Minimises `f` on `[a, b]` with Brent's method.
///
/// `tol` is the absolute x-tolerance (must be positive); `max_iter`
/// bounds the number of iterations. The function must be finite on the
/// interval. Returns the best point found even when the iteration cap is
/// reached (`converged == false` in that case).
pub fn brent_minimize(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: u32,
) -> BrentResult {
    assert!(a < b, "brent_minimize: need a < b, got [{a}, {b}]");
    assert!(tol > 0.0, "brent_minimize: tolerance must be positive");

    let (mut lo, mut hi) = (a, b);
    let mut evaluations = 0u32;
    let mut eval = |x: f64, n: &mut u32| {
        *n += 1;
        f(x)
    };

    // x: best point so far, w: second best, v: previous w.
    let mut x = lo + GOLDEN * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = eval(x, &mut evaluations);
    let mut fw = fx;
    let mut fv = fx;

    // d: step taken this iteration, e: step taken two iterations ago.
    let mut d = 0.0f64;
    let mut e = 0.0f64;

    for _ in 0..max_iter {
        let mid = 0.5 * (lo + hi);
        let tol1 = tol * x.abs().max(1.0) * 1e-4 + tol;
        let tol2 = 2.0 * tol1;

        if (x - mid).abs() <= tol2 - 0.5 * (hi - lo) {
            return BrentResult {
                xmin: x,
                fmin: fx,
                evaluations,
                converged: true,
            };
        }

        let mut use_golden = true;
        if e.abs() > tol1 {
            // Fit a parabola through (v,fv), (w,fw), (x,fx).
            let r = (x - w) * (fx - fv);
            let mut q = (x - v) * (fx - fw);
            let mut p = (x - v) * q - (x - w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_prev = e;
            e = d;
            // Accept the parabolic step only if it falls inside the
            // bracket and moves less than half the step before last.
            if p.abs() < (0.5 * q * e_prev).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = if mid > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }

        if use_golden {
            e = if x < mid { hi - x } else { lo - x };
            d = GOLDEN * e;
        }

        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = eval(u, &mut evaluations);

        if fu <= fx {
            if u < x {
                hi = x;
            } else {
                lo = x;
            }
            v = w;
            fv = fw;
            w = x;
            fw = fx;
            x = u;
            fx = fu;
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                v = w;
                fv = fw;
                w = u;
                fw = fu;
            } else if fu <= fv || v == x || v == w {
                v = u;
                fv = fu;
            }
        }
    }

    BrentResult {
        xmin: x,
        fmin: fx,
        evaluations,
        converged: false,
    }
}

/// Golden-section search: slower than Brent but makes no smoothness
/// assumptions. Used as a cross-check in tests and for the occasional
/// non-smooth objective (e.g. discretised granularity tuning).
pub fn golden_section_minimize(
    mut f: impl FnMut(f64) -> f64,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: u32,
) -> BrentResult {
    assert!(a < b, "golden_section_minimize: need a < b");
    assert!(
        tol > 0.0,
        "golden_section_minimize: tolerance must be positive"
    );
    let inv_phi = 0.618_033_988_749_894_9; // 1/phi
    let (mut lo, mut hi) = (a, b);
    let mut x1 = hi - inv_phi * (hi - lo);
    let mut x2 = lo + inv_phi * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    let mut evaluations = 2;
    let mut converged = false;

    for _ in 0..max_iter {
        if (hi - lo).abs() < tol {
            converged = true;
            break;
        }
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - inv_phi * (hi - lo);
            f1 = f(x1);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + inv_phi * (hi - lo);
            f2 = f(x2);
        }
        evaluations += 1;
    }

    let (xmin, fmin) = if f1 < f2 { (x1, f1) } else { (x2, f2) };
    BrentResult {
        xmin,
        fmin,
        evaluations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_finds_quadratic_minimum() {
        let r = brent_minimize(|x| (x - 2.5) * (x - 2.5) + 1.0, 0.0, 10.0, 1e-10, 200);
        assert!(r.converged);
        assert!((r.xmin - 2.5).abs() < 1e-6, "xmin {}", r.xmin);
        assert!((r.fmin - 1.0).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_nonpolynomial_minimum() {
        // f(x) = x - ln(x) has its minimum at x = 1.
        let r = brent_minimize(|x| x - x.ln(), 0.01, 20.0, 1e-12, 200);
        assert!(r.converged);
        assert!((r.xmin - 1.0).abs() < 1e-5, "xmin {}", r.xmin);
    }

    #[test]
    fn brent_handles_minimum_at_boundary() {
        // Monotone increasing: minimum is at the left edge.
        let r = brent_minimize(|x| x, 0.0, 1.0, 1e-9, 200);
        assert!(r.xmin < 1e-3, "xmin {}", r.xmin);
    }

    #[test]
    fn brent_matches_golden_section() {
        let f = |x: f64| (x - 0.7).powi(4) + 0.3 * x;
        let b = brent_minimize(f, -2.0, 3.0, 1e-10, 500);
        let g = golden_section_minimize(f, -2.0, 3.0, 1e-10, 500);
        assert!((b.xmin - g.xmin).abs() < 1e-4, "{} vs {}", b.xmin, g.xmin);
        assert!(b.evaluations <= g.evaluations, "Brent should not be slower");
    }

    #[test]
    fn brent_reports_nonconvergence_under_tiny_budget() {
        let r = brent_minimize(|x| (x - 5.0).powi(2), 0.0, 100.0, 1e-14, 2);
        assert!(!r.converged);
        assert!(r.evaluations >= 1);
    }

    #[test]
    fn golden_section_converges_on_abs() {
        // |x - 1| is not smooth at its minimum; golden section still works.
        let r = golden_section_minimize(|x| (x - 1.0).abs(), -4.0, 6.0, 1e-9, 500);
        assert!(r.converged);
        assert!((r.xmin - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "need a < b")]
    fn brent_rejects_inverted_interval() {
        brent_minimize(|x| x, 1.0, 0.0, 1e-6, 10);
    }
}
