//! Self-contained micro-benchmark harness.
//!
//! The workspace must build with no external crates, so the B-series
//! benches use this small timing runner instead of Criterion. The
//! protocol per measurement:
//!
//! 1. **Calibrate**: run the closure once, then scale the batch size so
//!    one timed batch lasts at least ~10 ms (amortises timer overhead).
//! 2. **Warm up** for one batch.
//! 3. **Sample**: run `samples` timed batches and keep the *minimum*
//!    per-iteration time — the least-noise estimator for throughput
//!    benches on a shared machine.
//!
//! Time budget and sample count shrink under `BIODIST_BENCH_FAST=1`
//! (used by the smoke mode and by tests) so a full bench binary stays
//! in CI-friendly territory.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (group/name style, free-form).
    pub name: String,
    /// Best-of-samples time for one iteration, in nanoseconds.
    pub ns_per_iter: f64,
    /// Work elements per iteration (DP cells, events, …), if declared.
    pub elements: Option<u64>,
    /// Iterations actually timed per batch.
    pub batch: u64,
}

impl Measurement {
    /// Elements processed per second, when an element count was given.
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.elements.map(|e| e as f64 * 1e9 / self.ns_per_iter)
    }

    fn render_row(&self) -> String {
        let rate = match self.elems_per_sec() {
            Some(r) if r >= 1e6 => format!("{:>10.1} Melem/s", r / 1e6),
            Some(r) => format!("{:>10.1} Kelem/s", r / 1e3),
            None => format!("{:>18}", ""),
        };
        format!(
            "{:<44} {:>14.0} ns/iter {rate}",
            self.name, self.ns_per_iter
        )
    }
}

/// Collects measurements and prints a fixed-width report.
pub struct Runner {
    min_batch_time: Duration,
    samples: u32,
    rows: Vec<Measurement>,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner tuned by the `BIODIST_BENCH_FAST` environment switch.
    pub fn new() -> Self {
        let fast = std::env::var_os("BIODIST_BENCH_FAST").is_some();
        Self {
            min_batch_time: Duration::from_millis(if fast { 2 } else { 10 }),
            samples: if fast { 3 } else { 7 },
            rows: Vec::new(),
        }
    }

    /// Times `f`, recording it under `name` with an optional per-iteration
    /// element count for throughput reporting. Returns the measurement.
    pub fn run<R>(
        &mut self,
        name: &str,
        elements: Option<u64>,
        mut f: impl FnMut() -> R,
    ) -> &Measurement {
        // Calibrate the batch size on a single iteration.
        let once = Instant::now();
        black_box(f());
        let one = once.elapsed().max(Duration::from_nanos(20));
        let batch = (self.min_batch_time.as_nanos() / one.as_nanos()).clamp(1, 1 << 24) as u64;

        // One warm-up batch, then best-of-N timed batches.
        for _ in 0..batch {
            black_box(f());
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        self.rows.push(Measurement {
            name: name.to_string(),
            ns_per_iter: best,
            elements,
            batch,
        });
        self.rows.last().expect("just pushed")
    }

    /// All measurements so far, in run order.
    pub fn measurements(&self) -> &[Measurement] {
        &self.rows
    }

    /// Prints the report table to stdout.
    pub fn report(&self, title: &str) {
        println!("== {title} ==");
        for row in &self.rows {
            println!("  {}", row.render_row());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports_throughput() {
        std::env::set_var("BIODIST_BENCH_FAST", "1");
        let mut r = Runner::new();
        let m = r.run("sum_1k", Some(1000), || (0..1000u64).sum::<u64>());
        assert!(m.ns_per_iter > 0.0);
        assert!(m.elems_per_sec().unwrap() > 0.0);
        assert_eq!(r.measurements().len(), 1);
    }

    #[test]
    fn slower_work_measures_slower() {
        std::env::set_var("BIODIST_BENCH_FAST", "1");
        let mut r = Runner::new();
        let small = r
            .run("small", None, || (0..100u64).sum::<u64>())
            .ns_per_iter;
        let big = r
            .run("big", None, || (0..100_000u64).sum::<u64>())
            .ns_per_iter;
        assert!(big > small, "{big} vs {small}");
    }
}
