//! Seeded experiment workloads, shared by the figure binaries and the
//! integration tests so every run measures the same inputs.

use biodist_bioseq::synth::{random_sequence, DbSpec, FamilySpec, SyntheticDb};
use biodist_bioseq::{Alphabet, Sequence};
use biodist_dprml::DprmlConfig;
use biodist_dsearch::DsearchConfig;
use biodist_phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist_phylo::model::ModelKind;
use biodist_phylo::patterns::PatternAlignment;
use std::sync::Arc;

/// Master seed for every figure workload.
pub const SEED: u64 = 20050404; // IPDPS'05 week

/// Fig. 1 workload: a synthetic protein database with planted homologs
/// and three query sequences, sized so the 1-processor virtual runtime
/// is in the paper's hours range (see `cost_scale` docs).
pub fn fig1_inputs() -> (Vec<Sequence>, Vec<Sequence>, DsearchConfig) {
    let queries: Vec<Sequence> = (0..3)
        .map(|i| {
            random_sequence(
                Alphabet::Protein,
                &format!("query{i}"),
                300,
                SEED + i as u64,
            )
        })
        .collect();
    let fam = FamilySpec {
        copies: 5,
        substitution_rate: 0.2,
        indel_rate: 0.02,
    };
    let db = SyntheticDb::generate_with_family(
        &DbSpec::protein_demo(1000, 300),
        &queries[0],
        &fam,
        SEED + 10,
    );
    let mut config = DsearchConfig::protein_default();
    // 400 abstract ops per DP cell ≈ 2.5·10⁴ cells/s on a PIII-1000,
    // the right ballpark for the paper's 2004 Java full-alignment
    // kernels, and large enough that even the 83-machine run spans many
    // owner-activity cycles (so speedups average over the traces).
    config.cost_scale = 400.0;
    (db.sequences, queries, config)
}

/// The processor counts swept for Fig. 1 (the paper's x-axis runs to
/// its 83-machine laboratory).
pub const FIG1_PROCESSORS: &[usize] = &[1, 2, 4, 8, 16, 24, 32, 48, 64, 83];

/// Fig. 2 workload: a 50-taxon synthetic DNA alignment (evolved down a
/// random tree) and a DPRml configuration tuned so six instances keep a
/// 40-machine pool busy.
pub fn fig2_inputs() -> (Arc<PatternAlignment>, DprmlConfig) {
    let truth = random_yule_tree(50, 0.1, SEED + 20);
    let mut config = DprmlConfig {
        model: ModelKind::Hky85 {
            kappa: 4.0,
            freqs: [0.25; 4],
        },
        ..Default::default()
    };
    // One branch-length sweep per candidate / stage keeps real compute
    // tractable; the search *shape* (stage structure, unit counts) is
    // what the figure measures.
    config.search.candidate_rounds = 1;
    config.search.refine_rounds = 1;
    config.search.nni = false;
    // Full refinement every 5th insertion: keeps the serial per-stage
    // work small (Amdahl), exactly as fastDNAml-style tools defer
    // global smoothing.
    config.search.refine_every = 5;
    // ~20 ops per modelled flop: PAL-era Java likelihood throughput.
    config.cost_scale = 20.0;
    let model = config.build_model();
    let seqs = simulate_alignment(&truth, &model, 200, None, SEED + 21);
    (Arc::new(PatternAlignment::from_sequences(&seqs)), config)
}

/// The processor counts swept for Fig. 2 (paper: 5–40).
pub const FIG2_PROCESSORS: &[usize] = &[5, 10, 15, 20, 25, 30, 35, 40];

/// Number of simultaneous problem instances in Fig. 2.
pub const FIG2_INSTANCES: usize = 6;

/// Per-instance taxon insertion orders for Fig. 2: instance 0 uses the
/// natural order, the rest use seeded random addition orders — the
/// "jumble" of fastDNAml, and the reason biologists run several
/// stochastic instances at once (paper §3.2). Distinct orders also
/// desynchronise the instances' stage barriers.
pub fn fig2_orders(n_taxa: usize) -> Vec<Vec<usize>> {
    use biodist_util::rng::{shuffle, Xoshiro256StarStar};
    (0..FIG2_INSTANCES)
        .map(|i| {
            let mut order: Vec<usize> = (0..n_taxa).collect();
            if i > 0 {
                let mut rng = Xoshiro256StarStar::new(SEED + 40 + i as u64);
                shuffle(&mut order, &mut rng);
            }
            order
        })
        .collect()
}

/// A small seeded DSEARCH server for the ops-plane tools (`abl_report
/// gen`, `biodist_top`): one query against a 150-sequence synthetic
/// protein database, ~24 units of ~10 virtual seconds each. `tweak`
/// can adjust the scheduler config (e.g. arm the health detector)
/// before the server is built.
pub fn demo_dsearch_server_with(
    seed: u64,
    tweak: impl FnOnce(&mut biodist_core::SchedulerConfig),
) -> biodist_core::Server {
    use biodist_core::{SchedulerConfig, Server};
    let query = random_sequence(Alphabet::Protein, "query0", 200, seed);
    let fam = FamilySpec {
        copies: 3,
        substitution_rate: 0.2,
        indel_rate: 0.02,
    };
    let db =
        SyntheticDb::generate_with_family(&DbSpec::protein_demo(150, 200), &query, &fam, seed + 10);
    let mut config = DsearchConfig::protein_default();
    config.cost_scale = 400.0;
    let mut sched = SchedulerConfig {
        target_unit_secs: 10.0,
        ..Default::default()
    };
    tweak(&mut sched);
    let mut server = Server::new(sched);
    server.submit(biodist_dsearch::build_problem(
        db.sequences,
        vec![query],
        &config,
    ));
    server
}

/// [`demo_dsearch_server_with`] with the stock scheduler config.
pub fn demo_dsearch_server(seed: u64) -> biodist_core::Server {
    demo_dsearch_server_with(seed, |_| {})
}

/// A small seeded DPRml server for the ops-plane tools: one 10-taxon
/// instance with a single candidate/refine round. `tweak` adjusts the
/// scheduler config before the server is built.
pub fn demo_dprml_server_with(
    seed: u64,
    tweak: impl FnOnce(&mut biodist_core::SchedulerConfig),
) -> biodist_core::Server {
    use biodist_core::{SchedulerConfig, Server};
    let truth = random_yule_tree(10, 0.12, seed);
    let mut config = DprmlConfig::default();
    config.search.candidate_rounds = 1;
    config.search.refine_rounds = 1;
    config.search.nni = false;
    config.search.refine_every = 3;
    config.cost_scale = 20.0;
    let model = config.build_model();
    let seqs = simulate_alignment(&truth, &model, 100, None, seed + 1);
    let data = Arc::new(PatternAlignment::from_sequences(&seqs));
    let mut sched = SchedulerConfig {
        target_unit_secs: 20.0,
        ..Default::default()
    };
    tweak(&mut sched);
    let mut server = Server::new(sched);
    server.submit(biodist_dprml::build_problem(data, &config, None, "dprml-0"));
    server
}

/// [`demo_dprml_server_with`] with the stock scheduler config.
pub fn demo_dprml_server(seed: u64) -> biodist_core::Server {
    demo_dprml_server_with(seed, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_inputs_are_deterministic_and_sized() {
        let (db_a, q_a, cfg) = fig1_inputs();
        let (db_b, _, _) = fig1_inputs();
        assert_eq!(db_a, db_b);
        assert_eq!(db_a.len(), 1005, "1000 background + 5 planted");
        assert_eq!(q_a.len(), 3);
        assert_eq!(cfg.cost_scale, 400.0);
    }

    #[test]
    fn fig2_inputs_are_deterministic_and_sized() {
        let (a, cfg) = fig2_inputs();
        let (b, _) = fig2_inputs();
        assert_eq!(*a, *b);
        assert_eq!(a.taxon_count(), 50);
        assert_eq!(a.site_count(), 200);
        assert!(!cfg.search.nni);
    }
}
