//! Shared harness plumbing: speedup series, table printing, CSV output.

use biodist_util::table::Table;
use std::path::PathBuf;

/// The workspace-root `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live two levels up.
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// A measured speedup curve plus its baseline.
#[derive(Debug, Clone)]
pub struct SpeedupSeries {
    /// Experiment title (used for the table and the CSV file name).
    pub title: String,
    /// Baseline (1-processor) makespan in virtual seconds.
    pub t1: f64,
    /// `(processors, makespan, mean utilization)` points.
    pub points: Vec<(usize, f64, f64)>,
}

impl SpeedupSeries {
    /// Creates an empty series with a known 1-processor baseline.
    pub fn new(title: &str, t1: f64) -> Self {
        Self {
            title: title.to_string(),
            t1,
            points: Vec::new(),
        }
    }

    /// Adds a measurement.
    pub fn push(&mut self, processors: usize, makespan: f64, utilization: f64) {
        self.points.push((processors, makespan, utilization));
    }

    /// Speedup at a point: `T(1) / T(N)`.
    pub fn speedup(&self, idx: usize) -> f64 {
        self.t1 / self.points[idx].1
    }

    /// Renders the table the paper's figure plots (processors, speedup,
    /// linear reference) plus makespan and utilization columns.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            &self.title,
            &[
                "processors",
                "makespan_s",
                "speedup",
                "linear",
                "efficiency",
                "utilization",
            ],
        );
        for (i, &(n, makespan, util)) in self.points.iter().enumerate() {
            let speedup = self.speedup(i);
            t.push_numeric_row(
                &[
                    n as f64,
                    makespan,
                    speedup,
                    n as f64,
                    speedup / n as f64,
                    util,
                ],
                3,
            );
        }
        t
    }

    /// Prints the table and writes `results/<slug>.csv`.
    pub fn report(&self) {
        let table = self.to_table();
        println!("{}", table.render_text());
        let slug: String = self
            .title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        let path = results_dir().join(format!("{slug}.csv"));
        table.write_csv(&path).expect("write results CSV");
        println!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_is_t1_over_tn() {
        let mut s = SpeedupSeries::new("x", 100.0);
        s.push(1, 100.0, 1.0);
        s.push(4, 30.0, 0.9);
        assert!((s.speedup(0) - 1.0).abs() < 1e-12);
        assert!((s.speedup(1) - 100.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn table_has_linear_reference_column() {
        let mut s = SpeedupSeries::new("demo run", 10.0);
        s.push(8, 2.0, 0.8);
        let table = s.to_table();
        let text = table.render_text();
        assert!(text.contains("linear"));
        assert!(text.contains("8.000"));
    }

    #[test]
    fn results_dir_exists_after_call() {
        let dir = results_dir();
        assert!(dir.is_dir());
    }
}
