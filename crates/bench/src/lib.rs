//! # biodist-bench
//!
//! Experiment harnesses: one binary per figure of the paper plus the
//! ablations listed in DESIGN.md §4, and micro-benchmarks for the
//! computational kernels driven by the in-tree [`timing`] runner (the
//! build is fully offline, so no Criterion). The binaries print the
//! same series the paper plots and write CSV into `results/` at the
//! workspace root.
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_dsearch_speedup` | Fig. 1 — DSEARCH speedup, 83-machine homogeneous lab |
//! | `fig2_dprml_speedup` | Fig. 2 — DPRml speedup, 50 taxa, 6 simultaneous instances |
//! | `abl_dprml_instances` | A1 — 1 vs 6 simultaneous DPRml instances |
//! | `abl_granularity` | A2 — dynamic vs fixed granularity, heterogeneous pool |
//! | `abl_scheduling` | A3 — adaptive vs naive scheduling under silent churn |
//! | `abl_kernels` | A5 — kernel choice: runtime vs sensitivity |
//! | `align_kernels` (bench) | B1 — alignment kernel throughput |
//! | `likelihood` (bench) | B2 — pruning kernel throughput |
//! | `framework` (bench) | B3 — event queue / server dispatch overhead |

pub mod harness;
pub mod timing;
pub mod workloads;

pub use harness::{results_dir, SpeedupSeries};
pub use timing::{Measurement, Runner};
