//! Figure 2 — DPRml speedup over a 50-taxon dataset with 6 problems
//! running simultaneously.
//!
//! Reproduces the paper's Fig. 2: DPRml is a *staged* computation, so a
//! single instance idles donors at stage barriers; biologists run such
//! stochastic searches several times anyway (each with its own random
//! taxon-addition order, fastDNAml's "jumble"), and with 6 simultaneous
//! instances the stages interleave and the pool stays busy. Speedup is
//! `T(1)/T(N)` in virtual time, where both runs process all 6
//! instances. Every point asserts each instance's tree equals its own
//! single-machine result (same answer at every pool size), and instance
//! 0 is anchored against the sequential reference.
//!
//! Run with: `cargo run -p biodist-bench --release --bin fig2_dprml_speedup`

use biodist_bench::harness::SpeedupSeries;
use biodist_bench::workloads::{fig2_inputs, fig2_orders, FIG2_INSTANCES, FIG2_PROCESSORS, SEED};
use biodist_core::{SchedulerConfig, Server, SimRunner};
use biodist_dprml::{build_problem, PhyloOutput};
use biodist_gridsim::deployments::homogeneous_lab;
use biodist_phylo::search::stepwise_ml;

fn run_instances(n_machines: usize) -> (f64, f64, Vec<PhyloOutput>) {
    let (data, config) = fig2_inputs();
    let orders = fig2_orders(data.taxon_count());
    let sched = SchedulerConfig {
        target_unit_secs: 10.0,
        ..Default::default()
    };
    let mut server = Server::new(sched);
    let pids: Vec<_> = (0..FIG2_INSTANCES)
        .map(|i| {
            server.submit(build_problem(
                data.clone(),
                &config,
                Some(orders[i].clone()),
                &format!("dprml-{i}"),
            ))
        })
        .collect();
    let machines = homogeneous_lab(n_machines, SEED + 1);
    let (report, mut server) = SimRunner::with_defaults(server, machines).run();
    let outs = pids
        .iter()
        .map(|&p| {
            server
                .take_output(p)
                .expect("output")
                .into_inner::<PhyloOutput>()
        })
        .collect();
    (report.makespan, report.mean_utilization, outs)
}

fn main() {
    let (data, config) = fig2_inputs();
    eprintln!(
        "fig2: {} taxa, {} sites ({} patterns), {} instances (jumbled addition orders)",
        data.taxon_count(),
        data.site_count(),
        data.pattern_count(),
        FIG2_INSTANCES
    );
    let model = config.build_model();
    let (ref_tree, ref_lnl) = stepwise_ml(&data, &model, None, &config.search);
    eprintln!("  sequential reference (natural order) lnL = {ref_lnl:.3}");

    eprintln!("  measuring T(1)...");
    let (t1, _, baseline) = run_instances(1);
    assert_eq!(
        baseline[0].tree.rf_distance(&ref_tree),
        0,
        "instance 0 (natural order) must match the sequential reference"
    );
    eprintln!("  T(1) = {t1:.1} virtual s");

    let mut series = SpeedupSeries::new(
        "Fig 2: DPRml speedup (50 taxa, 6 simultaneous problems)",
        t1,
    );
    for &n in FIG2_PROCESSORS {
        let (makespan, util, outs) = run_instances(n);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(
                out.tree.rf_distance(&baseline[i].tree),
                0,
                "instance {i} must give the same tree at N={n} as at N=1"
            );
            assert!((out.ln_likelihood - baseline[i].ln_likelihood).abs() < 1e-6);
        }
        eprintln!("  N={n:>3}: makespan {makespan:>9.1} s, util {util:.2}");
        series.push(n, makespan, util);
    }
    series.report();
}
