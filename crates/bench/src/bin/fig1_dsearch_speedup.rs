//! Figure 1 — DSEARCH speedup over a network of 83 semi-idle machines.
//!
//! Reproduces the paper's Fig. 1: speedup of a DSEARCH run versus the
//! number of processors, on a laboratory of homogeneous Pentium III
//! 1 GHz machines ("semi-idle": owners occasionally reclaim them), all
//! behind one 100 Mbit/s server link. Speedup is `T(1)/T(N)` in virtual
//! time. Every point re-runs the full search and asserts the hit list
//! equals the sequential reference, so the curve measures a *correct*
//! search.
//!
//! Run with: `cargo run -p biodist-bench --release --bin fig1_dsearch_speedup`

use biodist_bench::harness::SpeedupSeries;
use biodist_bench::workloads::{fig1_inputs, FIG1_PROCESSORS, SEED};
use biodist_core::{SchedulerConfig, Server, SimRunner};
use biodist_dsearch::{build_problem, search_sequential, SearchOutput};
use biodist_gridsim::deployments::homogeneous_lab;

fn main() {
    let (db, queries, config) = fig1_inputs();
    eprintln!(
        "fig1: database {} sequences, {} queries, kernel {:?}",
        db.len(),
        queries.len(),
        config.kernel
    );
    let expected = search_sequential(&db, &queries, &config);

    let sched = SchedulerConfig {
        target_unit_secs: 10.0,
        ..Default::default()
    };
    let mut points = Vec::new();
    for &n in FIG1_PROCESSORS {
        let mut server = Server::new(sched.clone());
        let pid = server.submit(build_problem(db.clone(), queries.clone(), &config));
        let machines = homogeneous_lab(n, SEED);
        let (report, mut server) = SimRunner::with_defaults(server, machines).run();
        let out = server
            .take_output(pid)
            .expect("output")
            .into_inner::<SearchOutput>();
        assert_eq!(
            out.hits, expected,
            "distributed hits must equal sequential at N={n}"
        );
        eprintln!(
            "  N={n:>3}: makespan {:>9.1} s, {} units, util {:.2}, link wait {:.3} s",
            report.makespan,
            report.total_units,
            report.mean_utilization,
            report.mean_link_queue_wait
        );
        points.push((n, report.makespan, report.mean_utilization));
    }

    let t1 = points[0].1;
    let mut series = SpeedupSeries::new("Fig 1: DSEARCH speedup (83 semi-idle PIII-1000)", t1);
    for (n, makespan, util) in points {
        series.push(n, makespan, util);
    }
    series.report();
}
