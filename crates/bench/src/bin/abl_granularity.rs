//! Ablation A2 — dynamic vs fixed work-unit granularity on a
//! heterogeneous pool.
//!
//! Quantifies the paper's §3.1 claim: "The parallel granularity is
//! dynamically controlled during each search to match the processing
//! abilities of the current set of donor machines." On a pool spanning
//! PII-300 to PIV-2400 (8× speed spread), fixed-size units sized for
//! the average machine leave slow donors holding straggler units at the
//! end of the run; dynamically sized units shrink for slow donors and
//! grow for fast ones. The end-game redundant dispatch is ablated
//! independently — it partially rescues fixed granularity by cloning
//! stragglers onto fast machines, at the price of wasted work. Results
//! are averaged over several trace seeds.
//!
//! Run with: `cargo run -p biodist-bench --release --bin abl_granularity`

use biodist_bench::harness::results_dir;
use biodist_bench::workloads::{fig1_inputs, SEED};
use biodist_core::{SchedulerConfig, Server, SimRunner};
use biodist_dsearch::build_problem;
use biodist_gridsim::deployments::heterogeneous_lab;
use biodist_util::stats::OnlineStats;
use biodist_util::table::Table;

const MACHINES: usize = 32;
const TRIALS: u64 = 5;

fn run(dynamic: bool, redundant: bool) -> (OnlineStats, OnlineStats, u64, u64) {
    let (db, queries, config) = fig1_inputs();
    let mut makespan = OnlineStats::new();
    let mut util = OnlineStats::new();
    let (mut units, mut wasted) = (0u64, 0u64);
    for trial in 0..TRIALS {
        let sched = SchedulerConfig {
            target_unit_secs: 60.0,
            enable_dynamic_granularity: dynamic,
            enable_adaptive: dynamic,
            enable_redundant_dispatch: redundant,
            ..Default::default()
        };
        let mut server = Server::new(sched);
        let pid = server.submit(build_problem(db.clone(), queries.clone(), &config));
        let machines = heterogeneous_lab(MACHINES, SEED + 200 + trial);
        let (report, server) = SimRunner::with_defaults(server, machines).run();
        makespan.push(report.makespan);
        util.push(report.mean_utilization);
        let stats = server.stats(pid);
        units += stats.completed_units;
        wasted += stats.wasted_results;
    }
    (makespan, util, units / TRIALS, wasted)
}

fn main() {
    eprintln!(
        "A2: DSEARCH granularity ablation, {MACHINES} heterogeneous machines (PII-300..PIV-2400), {TRIALS} seeds"
    );
    let mut table = Table::new(
        "A2: dynamic vs fixed granularity (heterogeneous pool, mean of 5 seeds)",
        &[
            "policy",
            "makespan_s",
            "stddev_s",
            "utilization",
            "units",
            "wasted",
        ],
    );
    let cases: [(&str, bool, bool); 4] = [
        ("dynamic+endgame", true, true),
        ("dynamic", true, false),
        ("fixed+endgame", false, true),
        ("fixed", false, false),
    ];
    let mut measured = Vec::new();
    for (name, dynamic, redundant) in cases {
        let (makespan, util, units, wasted) = run(dynamic, redundant);
        eprintln!(
            "  {name:>16}: makespan {:.1} ± {:.1} s, util {:.2}, {units} units/run",
            makespan.mean(),
            makespan.stddev(),
            util.mean()
        );
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}", makespan.mean()),
            format!("{:.1}", makespan.stddev()),
            format!("{:.3}", util.mean()),
            units.to_string(),
            wasted.to_string(),
        ]);
        measured.push((name, makespan.mean()));
    }
    println!("{}", table.render_text());
    let path = results_dir().join("abl_granularity.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    let get = |n: &str| measured.iter().find(|(name, _)| *name == n).unwrap().1;
    println!(
        "\ndynamic granularity beats fixed by {:.1}% without the end-game and by\n\
         {:.1}% with it; the end-game itself cuts the straggler tail by {:.1}%\n\
         (dynamic) / {:.1}% (fixed), at the price of some wasted duplicate work",
        (get("fixed") / get("dynamic") - 1.0) * 100.0,
        (get("fixed+endgame") / get("dynamic+endgame") - 1.0) * 100.0,
        (get("dynamic") / get("dynamic+endgame") - 1.0) * 100.0,
        (get("fixed") / get("fixed+endgame") - 1.0) * 100.0
    );
}
