//! Ablation A5 — DSEARCH kernel choice: runtime vs. sensitivity.
//!
//! The paper lets users "choose one of the built-in search algorithms"
//! (§3.1) without quantifying the trade-off. This ablation runs the
//! Fig. 1 workload under each kernel on the same 32-machine pool and
//! reports the virtual makespan together with sensitivity metrics: how
//! many of the five planted homologs each kernel ranks in its top five,
//! and the *separation margin* — the gap between the weakest homolog
//! and the strongest background score, which quantifies how much
//! headroom each kernel leaves before false positives appear.
//!
//! Run with: `cargo run -p biodist-bench --release --bin abl_kernels`
//!
//! `--smoke` skips the simulation and instead measures real wall-clock
//! kernel throughput (DP cells per second, one 256-residue protein
//! query profiled once and scored against a subject batch — the
//! DSEARCH hot path) and writes `BENCH_kernels.json` at the workspace
//! root. This is the measurement behind the `cost_cells` ratio table.

use biodist_align::{AlignKernel, KernelKind};
use biodist_bench::harness::results_dir;
use biodist_bench::workloads::SEED;
use biodist_bench::Runner;
use biodist_bioseq::synth::{random_sequence, DbSpec, FamilySpec, SyntheticDb};
use biodist_bioseq::{Alphabet, ScoringScheme};
use biodist_core::{SchedulerConfig, Server, SimRunner};
use biodist_dsearch::build_problem;
use biodist_gridsim::deployments::homogeneous_lab;
use biodist_util::table::Table;

const MACHINES: usize = 32;

/// Measures cells/sec per kernel on 256-residue protein pairs and
/// writes `BENCH_kernels.json`; returns the JSON text.
fn smoke() -> String {
    const LEN: usize = 256;
    const SUBJECTS: usize = 8;
    let scheme = ScoringScheme::protein_default();
    let query = random_sequence(Alphabet::Protein, "q", LEN, SEED + 70);
    let subjects: Vec<_> = (0..SUBJECTS)
        .map(|i| {
            random_sequence(
                Alphabet::Protein,
                &format!("s{i}"),
                LEN,
                SEED + 71 + i as u64,
            )
        })
        .collect();
    let cells_per_batch = (LEN * LEN * SUBJECTS) as u64;

    let kernels = [
        KernelKind::SmithWaterman,
        KernelKind::FastLocal,
        KernelKind::Striped,
        KernelKind::NeedlemanWunsch,
        KernelKind::SemiGlobal,
    ];
    let mut runner = Runner::new();
    let mut rates: Vec<(String, f64)> = Vec::new();
    for kind in kernels {
        let kernel = AlignKernel::new(kind, scheme.clone());
        let prep = kernel.prepare(&query);
        let m = runner.run(
            &format!("kernel/{}", kind.name()),
            Some(cells_per_batch),
            || {
                subjects
                    .iter()
                    .map(|s| kernel.score_prepared(&query, &prep, s))
                    .sum::<i32>()
            },
        );
        rates.push((kind.name(), m.elems_per_sec().expect("cells declared")));
    }
    runner.report(&format!(
        "abl_kernels --smoke: {LEN}-residue protein query vs {SUBJECTS} subjects"
    ));

    let scalar = rates
        .iter()
        .find(|(n, _)| n == "smith-waterman")
        .expect("scalar baseline")
        .1;
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"protein {LEN}x{LEN}, {SUBJECTS} subjects, blosum62 11/1, profiled batch path\",\n"
    ));
    json.push_str("  \"kernels\": {\n");
    for (i, (name, rate)) in rates.iter().enumerate() {
        let sep = if i + 1 == rates.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{name}\": {{ \"cells_per_sec\": {rate:.0}, \"speedup_vs_scalar_sw\": {:.2} }}{sep}\n",
            rate / scalar
        ));
    }
    json.push_str("  }\n}\n");

    let striped = rates
        .iter()
        .find(|(n, _)| n == "striped")
        .expect("striped")
        .1;
    println!(
        "striped vs scalar sw: {:.1}x ({:.0} vs {:.0} cells/s)",
        striped / scalar,
        striped,
        scalar
    );
    json
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        let json = smoke();
        // results_dir() is `<workspace>/results`; the JSON snapshot
        // lives next to it at the workspace root.
        let path = results_dir().join("..").join("BENCH_kernels.json");
        std::fs::write(&path, json).expect("write BENCH_kernels.json");
        println!("wrote {}", path.display());
        return;
    }
    // A deliberately hard family: 35% substitutions and 8% indels push
    // remote homologs toward the twilight zone, where kernel choice
    // starts to matter for sensitivity, not just speed.
    let queries = vec![random_sequence(Alphabet::Protein, "query0", 300, SEED + 90)];
    let family = FamilySpec {
        copies: 5,
        substitution_rate: 0.35,
        indel_rate: 0.08,
    };
    let db = SyntheticDb::generate_with_family(
        &DbSpec::protein_demo(600, 300),
        &queries[0],
        &family,
        SEED + 91,
    );
    let planted = db.planted_ids.clone();
    let db = db.sequences;
    let mut base_config = biodist_dsearch::DsearchConfig::protein_default();
    base_config.cost_scale = 400.0;
    eprintln!(
        "A5: kernel ablation, {} sequences, {} planted homologs, {MACHINES} machines",
        db.len(),
        planted.len()
    );

    let kernels = [
        KernelKind::SmithWaterman,
        KernelKind::Striped,
        KernelKind::FastLocal,
        KernelKind::SemiGlobal,
        KernelKind::NeedlemanWunsch,
        KernelKind::Banded { band: 32 },
    ];

    let mut table = Table::new(
        "A5: DSEARCH kernel choice (32 homogeneous machines)",
        &[
            "kernel",
            "makespan_s",
            "units",
            "homologs_in_top5",
            "margin",
        ],
    );
    for kind in kernels {
        let mut config = base_config.clone();
        config.kernel = kind;
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 30.0,
            ..Default::default()
        });
        let pid = server.submit(build_problem(db.clone(), queries.clone(), &config));
        let machines = homogeneous_lab(MACHINES, SEED + 300);
        let (report, mut server) = SimRunner::with_defaults(server, machines).run();
        let out = server
            .take_output(pid)
            .expect("output")
            .into_inner::<biodist_dsearch::SearchOutput>();
        let all = &out.hits[&queries[0].id];
        let top5 = &all[..5.min(all.len())];
        let found = top5.iter().filter(|h| planted.contains(&h.db_id)).count();
        let weakest_homolog = all
            .iter()
            .filter(|h| planted.contains(&h.db_id))
            .map(|h| h.score)
            .min()
            .unwrap_or(0);
        let strongest_background = all
            .iter()
            .filter(|h| !planted.contains(&h.db_id))
            .map(|h| h.score)
            .max()
            .unwrap_or(0);
        let margin = weakest_homolog - strongest_background;
        eprintln!(
            "  {:>16}: makespan {:>9.1} s, {}/{} homologs in top 5, margin {margin}",
            kind.name(),
            report.makespan,
            found,
            planted.len()
        );
        table.push_row(vec![
            kind.name(),
            format!("{:.1}", report.makespan),
            server.stats(pid).completed_units.to_string(),
            format!("{found}/{}", planted.len()),
            margin.to_string(),
        ]);
    }
    println!("{}", table.render_text());
    let path = results_dir().join("abl_kernels.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
