//! Ablation A3 — adaptive scheduling vs a naive baseline under silent
//! donor churn.
//!
//! The paper's future work (§4) is "enhancing the adaptive scheduling
//! strategy"; this ablation measures what the existing machinery buys.
//! A heterogeneous pool suffers realistic churn: a quarter of the
//! donors vanish *silently* at staggered times mid-run (the server only
//! discovers the loss when a lease expires), and fresh donors join
//! late. The adaptive configuration (per-client speed tracking, dynamic
//! granularity, redundant end-game dispatch) is compared against the
//! naive one (fixed units, no adaptation, no redundancy — lease-timeout
//! reissue stays on in both, since without it any churn deadlocks the
//! run). Results are averaged over several trace seeds.
//!
//! Run with: `cargo run -p biodist-bench --release --bin abl_scheduling`

use biodist_bench::harness::results_dir;
use biodist_bench::workloads::{fig1_inputs, SEED};
use biodist_core::{SchedulerConfig, Server, SimRunner};
use biodist_dsearch::{build_problem, search_sequential, DsearchConfig, SearchOutput};
use biodist_gridsim::deployments::heterogeneous_lab;
use biodist_gridsim::machine::Machine;
use biodist_util::stats::OnlineStats;
use biodist_util::table::Table;

const POOL: usize = 40;
const TRIALS: u64 = 5;

fn churn_pool(seed: u64) -> Vec<Machine> {
    let mut machines = heterogeneous_lab(POOL + 10, seed);
    // A quarter of the initial pool departs silently, staggered.
    for (k, m) in machines.iter_mut().take(10).enumerate() {
        m.departure = Some(150.0 + 80.0 * k as f64);
    }
    // Ten replacement donors join late.
    for (k, m) in machines.iter_mut().skip(POOL).enumerate() {
        m.arrival = 300.0 + 60.0 * k as f64;
    }
    machines
}

struct Outcome {
    makespan: OnlineStats,
    reissued: u64,
    redundant: u64,
    wasted: u64,
}

fn run_policy(
    sched: &SchedulerConfig,
    db: &[biodist_bioseq::Sequence],
    queries: &[biodist_bioseq::Sequence],
    config: &DsearchConfig,
    expected: &std::collections::BTreeMap<String, Vec<biodist_align::Hit>>,
) -> Outcome {
    let mut out = Outcome {
        makespan: OnlineStats::new(),
        reissued: 0,
        redundant: 0,
        wasted: 0,
    };
    for trial in 0..TRIALS {
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 60.0,
            ..sched.clone()
        });
        let pid = server.submit(build_problem(db.to_vec(), queries.to_vec(), config));
        let (report, mut server) =
            SimRunner::with_defaults(server, churn_pool(SEED + 100 + trial)).run();
        let hits = server
            .take_output(pid)
            .unwrap()
            .into_inner::<SearchOutput>();
        assert_eq!(&hits.hits, expected, "results must survive churn unchanged");
        out.makespan.push(report.makespan);
        let stats = server.stats(pid);
        out.reissued += stats.reissued_units;
        out.redundant += stats.redundant_dispatches;
        out.wasted += stats.wasted_results;
    }
    out
}

fn main() {
    eprintln!("A3: scheduling under silent churn, {TRIALS} trace seeds, pool {POOL}+10");
    let (db, queries, config) = fig1_inputs();
    let expected = search_sequential(&db, &queries, &config);

    let mut table = Table::new(
        "A3: adaptive vs naive scheduling under silent churn (mean of 5 seeds)",
        &[
            "policy",
            "makespan_s",
            "stddev_s",
            "reissued",
            "redundant",
            "wasted",
        ],
    );
    let cases = [
        ("adaptive", SchedulerConfig::default()),
        ("naive", SchedulerConfig::naive()),
    ];
    let mut means = Vec::new();
    for (name, sched) in cases {
        let o = run_policy(&sched, &db, &queries, &config, &expected);
        eprintln!(
            "  {name:>8}: makespan {:.1} ± {:.1} s ({} reissued, {} redundant, {} wasted over {TRIALS} trials)",
            o.makespan.mean(),
            o.makespan.stddev(),
            o.reissued,
            o.redundant,
            o.wasted
        );
        table.push_row(vec![
            name.to_string(),
            format!("{:.1}", o.makespan.mean()),
            format!("{:.1}", o.makespan.stddev()),
            o.reissued.to_string(),
            o.redundant.to_string(),
            o.wasted.to_string(),
        ]);
        means.push((name, o.makespan.mean()));
    }
    println!("{}", table.render_text());
    let path = results_dir().join("abl_scheduling.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());

    println!(
        "\nadaptive scheduling beats naive by {:.1}% under silent churn (identical results)",
        (means[1].1 / means[0].1 - 1.0) * 100.0
    );
}
