//! Scale sweep for the nonblocking sharded control plane.
//!
//! Two sweeps back the scale tier's headline claim (server cost is
//! O(shards) in threads and flat per donor in CPU):
//!
//! * **TCP loopback sweep** — real donor fleets of increasing size run
//!   full request/compute/submit cycles against the event-loop server.
//!   Server-thread CPU is read from the `evloop.cpu_ticks` counter
//!   (charged per shard/acceptor/ticker thread from
//!   `/proc/thread-self/stat` at thread exit), and each fleet runs to a
//!   fixed inbound-frame budget so the per-frame — i.e. per donor
//!   request — server cost is directly comparable across fleet sizes.
//!   The headline number, `server_cpu_ms_per_1k_frames`, must stay flat
//!   (within 2×) from the smallest to the largest fleet: a dispatch
//!   plane that scanned donors per request would blow through that.
//!
//! * **Simulated machine sweep** — the discrete-event backend drives
//!   fleets up to 100k virtual machines through a π-integration run,
//!   recording the simulator's events-per-second throughput from
//!   `RunReport::events_processed`.
//!
//! Run with: `cargo run -p biodist-bench --release --bin abl_scale`
//! for the full sweep (writes `BENCH_scale.json` at the workspace root
//! and CSVs under `results/`); `--smoke` runs CI-sized fleets and
//! writes the same JSON shape.

use biodist_bench::harness::results_dir;
use biodist_core::builtin::integration_problem;
use biodist_core::net::wire::{encode_frame, Frame, FrameReader};
use biodist_core::net::{raise_nofile_limit, Clock, NetServer, NetServerOptions};
use biodist_core::problem::WorkUnit;
use biodist_core::{RunReport, SchedulerConfig, Server, SimRunner, Telemetry};
use biodist_gridsim::deployments::homogeneous_lab;
use biodist_util::table::Table;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fixed-size work units (50 grid points at 200 ops/point) keep the
/// donor-side compute around a few microseconds, so the sweep loads the
/// dispatch plane rather than the ALUs.
const UNIT_OPS: f64 = 10_000.0;

/// CLK_TCK on every Linux this runs on: one CPU tick is 10ms.
const MS_PER_TICK: f64 = 10.0;

fn sweep_cfg() -> SchedulerConfig {
    SchedulerConfig {
        min_unit_ops: UNIT_OPS,
        max_unit_ops: UNIT_OPS,
        lease_min_secs: 30.0,
        ..Default::default()
    }
}

struct TcpSample {
    donors: usize,
    wall_secs: f64,
    frames_in: u64,
    cpu_ticks: u64,
}

impl TcpSample {
    fn frames_per_sec(&self) -> f64 {
        self.frames_in as f64 / self.wall_secs
    }
    /// Server CPU spent per thousand inbound frames — the per-request
    /// (hence per-donor) cost of the control plane, in milliseconds.
    fn cpu_ms_per_kframe(&self) -> f64 {
        self.cpu_ticks as f64 * MS_PER_TICK * 1000.0 / self.frames_in as f64
    }
    fn per_donor_cpu_ms_per_sec(&self) -> f64 {
        self.cpu_ticks as f64 * MS_PER_TICK / self.wall_secs / self.donors as f64
    }
}

/// Runs `donors` loopback donors in full request/compute/submit cycles
/// until the server has absorbed `frame_budget` inbound frames, then
/// tears the fleet down and reads the server-thread CPU spent.
fn tcp_sample(donors: usize, shards: usize, frame_budget: u64) -> TcpSample {
    raise_nofile_limit(20_000);
    let mut server = Server::new(sweep_cfg());
    server.set_telemetry(Telemetry::enabled());
    let telemetry = server.telemetry();
    // 2e9 grid points = 40M fixed-size units: the problem cannot finish
    // inside any frame budget here, so every cycle exercises the full
    // claim/lease/fold path with no end-game tail.
    let pid = server.submit(integration_problem(2_000_000_000));
    let algorithm = server.algorithm(pid);
    let codec = server.codec(pid).expect("integration has a codec");
    let net = NetServer::start(
        server,
        Clock::new(1.0),
        NetServerOptions {
            shards,
            claim_batch: 8,
            ..Default::default()
        },
    )
    .expect("bind loopback listener");
    let addr = net.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let start = Instant::now();
    let handles: Vec<_> = (0..donors)
        .map(|c| {
            let stop = stop.clone();
            let algorithm = algorithm.clone();
            let codec = codec.clone();
            std::thread::spawn(move || {
                let Ok(mut stream) = TcpStream::connect(addr) else {
                    return;
                };
                stream
                    .set_read_timeout(Some(Duration::from_millis(20)))
                    .unwrap();
                let mut reader = FrameReader::new();
                let _ = stream.write_all(&encode_frame(&Frame::Hello { client: c as u64 }));
                let await_frame = |stream: &mut TcpStream, reader: &mut FrameReader| loop {
                    if stop.load(Ordering::Relaxed) {
                        return None;
                    }
                    match reader.poll(stream) {
                        Ok(Some(f)) => return Some(f),
                        Ok(None) => {}
                        Err(_) => return None,
                    }
                };
                while !stop.load(Ordering::Relaxed) {
                    if stream
                        .write_all(&encode_frame(&Frame::RequestWork { client: c as u64 }))
                        .is_err()
                    {
                        return;
                    }
                    match await_frame(&mut stream, &mut reader) {
                        Some(Frame::AssignUnit {
                            problem,
                            unit,
                            cost_ops,
                            payload,
                        }) => {
                            let Ok(decoded) = codec.decode_unit(&payload) else {
                                return;
                            };
                            let wu = WorkUnit {
                                id: unit,
                                payload: decoded,
                                cost_ops,
                            };
                            let result = algorithm.compute(&wu);
                            let Ok(encoded) = codec.encode_result(&result.payload) else {
                                return;
                            };
                            if stream
                                .write_all(&encode_frame(&Frame::SubmitResult {
                                    client: c as u64,
                                    problem,
                                    unit,
                                    payload: encoded,
                                }))
                                .is_err()
                            {
                                return;
                            }
                            // The ack; tolerate anything else quietly.
                            let _ = await_frame(&mut stream, &mut reader);
                        }
                        Some(Frame::Wait) => std::thread::sleep(Duration::from_millis(2)),
                        Some(_) => {}
                        None => {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                        }
                    }
                    std::thread::sleep(Duration::from_millis(3));
                }
            })
        })
        .collect();

    let deadline = start + Duration::from_secs(120);
    loop {
        std::thread::sleep(Duration::from_millis(50));
        let frames = telemetry.metrics_snapshot().counter("net.frames_in");
        if frames >= frame_budget || Instant::now() >= deadline {
            break;
        }
    }
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    // kill() joins the shard/acceptor/ticker threads, which is when
    // each charges its CPU delta to `evloop.cpu_ticks`.
    net.kill();
    let wall_secs = start.elapsed().as_secs_f64();
    let snap = telemetry.metrics_snapshot();
    TcpSample {
        donors,
        wall_secs,
        frames_in: snap.counter("net.frames_in"),
        cpu_ticks: snap.counter("evloop.cpu_ticks"),
    }
}

struct SimSample {
    machines: usize,
    wall_secs: f64,
    report: RunReport,
}

impl SimSample {
    fn events_per_sec(&self) -> f64 {
        self.report.events_processed as f64 / self.wall_secs
    }
}

/// One simulated run: `machines` virtual donors, ~3 units each, with a
/// small setup payload so the shared-link serialization of 100k setup
/// transfers does not dominate the virtual timeline.
fn sim_sample(machines: usize) -> SimSample {
    let mut server = Server::new(sweep_cfg());
    let points_per_unit = (UNIT_OPS / biodist_core::builtin::OPS_PER_POINT) as u64;
    let n_points = machines as u64 * points_per_unit * 3;
    server.submit(integration_problem(n_points).with_setup_bytes(500));
    let start = Instant::now();
    let (report, _server) = SimRunner::with_defaults(server, homogeneous_lab(machines, 7)).run();
    SimSample {
        machines,
        wall_secs: start.elapsed().as_secs_f64(),
        report,
    }
}

fn render_json(shards: usize, tcp: &[TcpSample], sim: &[SimSample], flat: bool) -> String {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"pi-integration request/compute/submit cycles, {:.0}-op units, {shards} event-loop shards; server CPU from evloop.cpu_ticks\",\n",
        UNIT_OPS
    ));
    json.push_str(&format!("  \"shards\": {shards},\n"));
    json.push_str("  \"tcp\": [\n");
    for (i, s) in tcp.iter().enumerate() {
        let sep = if i + 1 == tcp.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"donors\": {}, \"wall_secs\": {:.2}, \"frames_in\": {}, \"frames_per_sec\": {:.0}, \"server_cpu_ticks\": {}, \"server_cpu_ms_per_1k_frames\": {:.2}, \"per_donor_cpu_ms_per_sec\": {:.4} }}{sep}\n",
            s.donors,
            s.wall_secs,
            s.frames_in,
            s.frames_per_sec(),
            s.cpu_ticks,
            s.cpu_ms_per_kframe(),
            s.per_donor_cpu_ms_per_sec(),
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"per_donor_cpu_flat_within_2x\": {flat},\n"));
    json.push_str("  \"sim\": [\n");
    for (i, s) in sim.iter().enumerate() {
        let sep = if i + 1 == sim.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"machines\": {}, \"events_processed\": {}, \"events_per_sec\": {:.0}, \"virtual_makespan_secs\": {:.1}, \"wall_secs\": {:.2}, \"total_units\": {} }}{sep}\n",
            s.machines,
            s.report.events_processed,
            s.events_per_sec(),
            s.report.makespan,
            s.wall_secs,
            s.report.total_units,
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Max/min ratio of the per-frame server CPU cost across the sweep.
fn cpu_spread(tcp: &[TcpSample]) -> f64 {
    let costs: Vec<f64> = tcp.iter().map(|s| s.cpu_ms_per_kframe()).collect();
    let lo = costs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = costs.iter().cloned().fold(0.0, f64::max);
    if lo > 0.0 {
        hi / lo
    } else {
        f64::INFINITY
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (donor_counts, shards, frame_budget, machine_counts): (&[usize], usize, u64, &[usize]) =
        if smoke {
            (&[16, 48], 2, 6_000, &[1_000, 3_000])
        } else {
            (&[64, 256, 1024], 4, 100_000, &[10_000, 30_000, 100_000])
        };

    let mut tcp = Vec::new();
    for &donors in donor_counts {
        let s = tcp_sample(donors, shards, frame_budget);
        println!(
            "tcp {:>5} donors / {shards} shards: {:>7} frames in {:.1}s ({:.0}/s), server cpu {} ticks, {:.2} ms/kframe, {:.4} ms/s/donor",
            s.donors,
            s.frames_in,
            s.wall_secs,
            s.frames_per_sec(),
            s.cpu_ticks,
            s.cpu_ms_per_kframe(),
            s.per_donor_cpu_ms_per_sec(),
        );
        tcp.push(s);
    }
    let spread = cpu_spread(&tcp);
    let min_ticks = tcp.iter().map(|s| s.cpu_ticks).min().unwrap_or(0);
    let flat = spread <= 2.0;
    println!(
        "per-donor server CPU spread across fleet sizes: {spread:.2}x \
         (flat-within-2x: {flat}, min sample {min_ticks} ticks)"
    );
    if !smoke && min_ticks >= 50 {
        assert!(
            flat,
            "per-donor server CPU must stay flat within 2x across fleet sizes (got {spread:.2}x)"
        );
    }

    let mut sim = Vec::new();
    for &machines in machine_counts {
        let s = sim_sample(machines);
        println!(
            "sim {:>7} machines: {:>9} events in {:.1}s wall ({:.0} events/s), makespan {:.1}s virtual, {} units",
            s.machines,
            s.report.events_processed,
            s.wall_secs,
            s.events_per_sec(),
            s.report.makespan,
            s.report.total_units,
        );
        sim.push(s);
    }

    let json = render_json(shards, &tcp, &sim, flat);
    // results_dir() is `<workspace>/results`; the JSON snapshot lives
    // next to it at the workspace root.
    let path = results_dir().join("..").join("BENCH_scale.json");
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    println!("wrote {}", path.display());

    if !smoke {
        let mut t = Table::new(
            "abl_scale tcp: per-donor server CPU across fleet sizes",
            &[
                "donors",
                "shards",
                "wall_secs",
                "frames_in",
                "frames_per_sec",
                "server_cpu_ticks",
                "cpu_ms_per_1k_frames",
                "per_donor_cpu_ms_per_sec",
            ],
        );
        for s in &tcp {
            t.push_row(vec![
                s.donors.to_string(),
                shards.to_string(),
                format!("{:.2}", s.wall_secs),
                s.frames_in.to_string(),
                format!("{:.0}", s.frames_per_sec()),
                s.cpu_ticks.to_string(),
                format!("{:.2}", s.cpu_ms_per_kframe()),
                format!("{:.4}", s.per_donor_cpu_ms_per_sec()),
            ]);
        }
        t.write_csv(&results_dir().join("abl_scale_tcp.csv"))
            .expect("write tcp csv");
        println!("{}", t.render_text());

        let mut t = Table::new(
            "abl_scale sim: event-loop throughput across machine counts",
            &[
                "machines",
                "events_processed",
                "events_per_sec",
                "virtual_makespan_secs",
                "wall_secs",
                "total_units",
            ],
        );
        for s in &sim {
            t.push_row(vec![
                s.machines.to_string(),
                s.report.events_processed.to_string(),
                format!("{:.0}", s.events_per_sec()),
                format!("{:.1}", s.report.makespan),
                format!("{:.2}", s.wall_secs),
                s.report.total_units.to_string(),
            ]);
        }
        t.write_csv(&results_dir().join("abl_scale_sim.csv"))
            .expect("write sim csv");
        println!("{}", t.render_text());
    }
}
