//! Figure-grade run reports from telemetry traces.
//!
//! Two modes, designed to chain:
//!
//! ```text
//! # run a seeded DSEARCH (or DPRml) simulation with a JSONL trace sink
//! cargo run -p biodist-bench --release --bin abl_report -- \
//!     gen --app dsearch --seed 7 --machines 8 --out results/dsearch.jsonl
//!
//! # validate the trace and render the figures' tables into results/
//! cargo run -p biodist-bench --release --bin abl_report -- \
//!     report --trace results/dsearch.jsonl
//! ```
//!
//! `gen` runs the workload on the simulator backend, so the trace is
//! byte-deterministic: the same `--seed` produces the identical file
//! (CI generates twice and `cmp`s). It prints the metrics-registry
//! snapshot as JSON on stdout.
//!
//! `report` parses the trace (exit 2 on any malformed line or
//! non-finite timestamp), checks the span-completeness invariant
//! (exit 3 — every lease must resolve), and writes five tables:
//!
//! * `<tag>_timeline.csv` — binned donor-utilization timeline with a
//!   stage-boundary column: DPRml's refine/insert barriers show up as
//!   the idle gaps of the paper's Figure 1;
//! * `<tag>_machines.csv` — per-machine busy time, delivered units and
//!   utilization;
//! * `<tag>_speedup.csv` — the effective-speedup summary
//!   (Σ busy / makespan) of the paper's Figure 2;
//! * `<tag>_phases.csv` — per-unit four-phase breakdown (transfer /
//!   queue-wait / compute / combine), one row per completed unit whose
//!   winning lease carried the full donor-side chain;
//! * `<tag>_phase_summary.csv` — the critical-path summary: per phase,
//!   total seconds, share of summed span time, and streaming
//!   p50/p95/p99 from fixed-bucket histograms.

use biodist_bench::harness::results_dir;
use biodist_core::telemetry::{EventKind, Histogram, LATENCY_BOUNDS};
use biodist_core::{SimRunner, Telemetry, TraceEvent};
use biodist_util::table::Table;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  abl_report gen --app dsearch|dprml [--seed N] [--machines M] --out PATH\n  abl_report report --trace PATH [--bins N] [--tag NAME]"
    );
    exit(1);
}

/// Value of `--name` in `args`, if present.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("report") => report(&args[1..]),
        _ => usage(),
    }
}

// ------------------------------------------------------------- gen mode

fn gen(args: &[String]) {
    let app = flag(args, "--app").unwrap_or_else(|| usage());
    let seed: u64 = flag(args, "--seed").map_or(7, |s| s.parse().expect("--seed"));
    let machines: usize = flag(args, "--machines").map_or(8, |s| s.parse().expect("--machines"));
    let out = PathBuf::from(flag(args, "--out").unwrap_or_else(|| usage()));
    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create trace dir");
    }

    let mut server = match app.as_str() {
        "dsearch" => biodist_bench::workloads::demo_dsearch_server(seed),
        "dprml" => biodist_bench::workloads::demo_dprml_server(seed),
        other => {
            eprintln!("unknown app `{other}` (want dsearch or dprml)");
            exit(1);
        }
    };
    let telemetry = Telemetry::enabled();
    telemetry.attach_jsonl(&out).expect("create trace file");
    server.set_telemetry(telemetry.clone());

    let pool = biodist_gridsim::deployments::homogeneous_lab(machines, seed);
    let (run, mut server) = SimRunner::with_defaults(server, pool).run();
    server.take_output(0).expect("run must complete");
    telemetry.flush();

    println!("{}", telemetry.metrics_snapshot().to_json());
    eprintln!(
        "gen: {app} seed={seed} machines={machines} makespan={:.1}s units={} trace={}",
        run.makespan,
        run.total_units,
        out.display()
    );
}

// ---------------------------------------------------------- report mode

/// One machine's closed busy interval (a lease from issue to
/// resolution).
struct BusySpan {
    client: usize,
    start: f64,
    end: f64,
}

fn report(args: &[String]) {
    let trace = PathBuf::from(flag(args, "--trace").unwrap_or_else(|| usage()));
    let bins: usize = flag(args, "--bins").map_or(24, |s| s.parse().expect("--bins"));
    let tag = flag(args, "--tag").unwrap_or_else(|| {
        trace
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".into())
    });

    let text = match std::fs::read_to_string(&trace) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", trace.display());
            exit(2);
        }
    };
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        match TraceEvent::from_json_line(line) {
            Ok(ev) => {
                if !ev.t.is_finite() || ev.t < 0.0 {
                    eprintln!("schema violation on line {}: bad timestamp {}", i + 1, ev.t);
                    exit(2);
                }
                events.push(ev);
            }
            Err(e) => {
                eprintln!("schema violation on line {}: {e}", i + 1);
                exit(2);
            }
        }
    }
    if events.is_empty() {
        eprintln!("empty trace: {}", trace.display());
        exit(2);
    }
    if let Err(e) = biodist_core::verify_spans(&events) {
        eprintln!("span invariant violated: {e}");
        exit(3);
    }

    let makespan = events.iter().map(|e| e.t).fold(0.0_f64, f64::max);
    let (spans, units_by_client, stage_marks, n_machines) = extract_spans(&events);

    // Per-machine table (Figure 2's raw material).
    let mut busy: BTreeMap<usize, f64> = BTreeMap::new();
    for s in &spans {
        *busy.entry(s.client).or_insert(0.0) += s.end - s.start;
    }
    let mut machines_table = Table::new(
        &format!("{tag}: per-machine busy time"),
        &["client", "busy_s", "units_delivered", "utilization"],
    );
    for (&client, &b) in &busy {
        let units = units_by_client.get(&client).copied().unwrap_or(0);
        machines_table.push_numeric_row(
            &[client as f64, b, units as f64, b / makespan.max(1e-12)],
            3,
        );
    }

    // Binned utilization timeline (Figure 1's shape): what fraction of
    // the pool was computing in each slice, and how many stage
    // boundaries fell inside it (DPRml barriers = the dips).
    let width = makespan / bins as f64;
    let mut timeline = Table::new(
        &format!("{tag}: utilization timeline ({n_machines} machines)"),
        &["t_start", "t_end", "busy_fraction", "stage_starts"],
    );
    for b in 0..bins {
        let (lo, hi) = (b as f64 * width, (b + 1) as f64 * width);
        let overlap: f64 = spans
            .iter()
            .map(|s| (s.end.min(hi) - s.start.max(lo)).max(0.0))
            .sum();
        let frac = overlap / (width.max(1e-12) * n_machines.max(1) as f64);
        let stages = stage_marks.iter().filter(|&&t| t >= lo && t < hi).count();
        timeline.push_numeric_row(&[lo, hi, frac, stages as f64], 3);
    }

    // Effective speedup: busy machine-seconds per wall second.
    let total_busy: f64 = busy.values().sum();
    let eff = total_busy / makespan.max(1e-12);
    let mut speedup = Table::new(
        &format!("{tag}: effective speedup"),
        &[
            "machines",
            "makespan_s",
            "busy_machine_s",
            "effective_speedup",
            "efficiency",
        ],
    );
    speedup.push_numeric_row(
        &[
            n_machines as f64,
            makespan,
            total_busy,
            eff,
            eff / n_machines.max(1) as f64,
        ],
        3,
    );

    // Per-unit four-phase breakdown: where each completed unit's wall
    // time went, as correlated across server- and donor-side events.
    let (phases, incomplete) = biodist_core::phase_breakdowns(&events);
    let mut phases_table = Table::new(
        &format!("{tag}: per-unit phase breakdown ({incomplete} units without donor-side chain)"),
        &[
            "problem",
            "unit",
            "client",
            "issued_at",
            "transfer_s",
            "queue_wait_s",
            "compute_s",
            "combine_s",
            "span_s",
        ],
    );
    for p in &phases {
        phases_table.push_numeric_row(
            &[
                p.problem as f64,
                p.unit as f64,
                p.client as f64,
                p.issued_at,
                p.transfer,
                p.queue_wait,
                p.compute,
                p.combine,
                p.span(),
            ],
            4,
        );
    }

    // Critical-path summary: which phase dominates the fleet's unit
    // spans. Quantiles come from the same fixed-bucket streaming
    // histograms the live health engine uses, so the offline report and
    // the online view agree on estimator semantics.
    type PhaseGetter = fn(&biodist_core::UnitPhases) -> f64;
    let phase_cols: [(&str, PhaseGetter); 5] = [
        ("transfer", |p| p.transfer),
        ("queue_wait", |p| p.queue_wait),
        ("compute", |p| p.compute),
        ("combine", |p| p.combine),
        ("span", |p| p.span()),
    ];
    let span_total: f64 = phases.iter().map(|p| p.span()).sum();
    let mut phase_summary = Table::new(
        &format!("{tag}: critical-path summary ({} units)", phases.len()),
        &["phase", "total_s", "share", "p50_s", "p95_s", "p99_s"],
    );
    for (name, get) in phase_cols {
        let mut hist = Histogram::new(LATENCY_BOUNDS);
        let mut total = 0.0;
        for p in &phases {
            let x = get(p);
            hist.observe(x);
            total += x;
        }
        let q = |q: f64| hist.quantile(q).unwrap_or(0.0);
        phase_summary.push_row(vec![
            name.to_string(),
            format!("{total:.3}"),
            format!("{:.3}", total / span_total.max(1e-12)),
            format!("{:.3}", q(0.50)),
            format!("{:.3}", q(0.95)),
            format!("{:.3}", q(0.99)),
        ]);
    }

    for (table, suffix) in [
        (&timeline, "timeline"),
        (&machines_table, "machines"),
        (&speedup, "speedup"),
        (&phases_table, "phases"),
        (&phase_summary, "phase_summary"),
    ] {
        println!("{}", table.render_text());
        let path = results_dir().join(format!("{tag}_{suffix}.csv"));
        table.write_csv(&path).expect("write results CSV");
        println!("wrote {}", path.display());
    }
    eprintln!(
        "report: {} events, {} machines, makespan {makespan:.1}s, effective speedup {eff:.2}, {} phase chains ({} incomplete)",
        events.len(),
        n_machines,
        phases.len(),
        incomplete
    );
}

/// Walks the trace once, closing every lease into a [`BusySpan`]:
/// a completion of a unit closes *all* of its open leases (redundant
/// siblings were computing too — that work is the paper's end-game
/// waste), an expiry/corruption closes that exact lease, a lost client
/// closes everything it held, and problem completion clears the rest.
#[allow(clippy::type_complexity)]
fn extract_spans(events: &[TraceEvent]) -> (Vec<BusySpan>, BTreeMap<usize, u64>, Vec<f64>, usize) {
    let mut open: BTreeMap<(usize, u64, usize), f64> = BTreeMap::new();
    let mut spans = Vec::new();
    let mut units_by_client: BTreeMap<usize, u64> = BTreeMap::new();
    let mut stage_marks = Vec::new();
    let mut machines = std::collections::BTreeSet::new();
    let close = |open: &mut BTreeMap<(usize, u64, usize), f64>,
                 spans: &mut Vec<BusySpan>,
                 keep: &dyn Fn(&(usize, u64, usize)) -> bool,
                 t: f64| {
        let closing: Vec<_> = open.keys().filter(|k| !keep(k)).cloned().collect();
        for key in closing {
            let start = open.remove(&key).expect("present");
            spans.push(BusySpan {
                client: key.2,
                start,
                end: t,
            });
        }
    };
    for ev in events {
        match &ev.kind {
            EventKind::MachineJoined { client } => {
                machines.insert(*client);
            }
            EventKind::UnitIssued {
                problem,
                unit,
                client,
                ..
            } => {
                machines.insert(*client);
                open.insert((*problem, *unit, *client), ev.t);
            }
            EventKind::UnitCompleted {
                problem,
                unit,
                client,
                ..
            } => {
                *units_by_client.entry(*client).or_insert(0) += 1;
                let (p, u) = (*problem, *unit);
                close(&mut open, &mut spans, &|k| !(k.0 == p && k.1 == u), ev.t);
            }
            EventKind::LeaseExpired {
                problem,
                unit,
                client,
            }
            | EventKind::ResultCorrupted {
                problem,
                unit,
                client,
            } => {
                let key = (*problem, *unit, *client);
                close(&mut open, &mut spans, &|k| *k != key, ev.t);
            }
            EventKind::ClientLost { client } => {
                let c = *client;
                close(&mut open, &mut spans, &|k| k.2 != c, ev.t);
            }
            EventKind::ProblemCompleted { problem } => {
                let p = *problem;
                close(&mut open, &mut spans, &|k| k.0 != p, ev.t);
            }
            EventKind::StageStarted { .. } => stage_marks.push(ev.t),
            _ => {}
        }
    }
    (spans, units_by_client, stage_marks, machines.len())
}
