//! Ablation A1 — how many simultaneous DPRml instances does it take to
//! keep the pool busy?
//!
//! Quantifies the paper's §3.2 claim: "DPRml is a staged computation so
//! running a single instance of the application will result in clients
//! becoming idle whilst waiting for stages to be completed." We fix the
//! pool at 40 machines and vary the number of simultaneous instances;
//! the aggregate efficiency (useful work per machine-second) should
//! rise steeply from 1 instance toward 6.
//!
//! Run with: `cargo run -p biodist-bench --release --bin abl_dprml_instances`

use biodist_bench::harness::results_dir;
use biodist_bench::workloads::{fig2_inputs, SEED};
use biodist_core::{SchedulerConfig, Server, SimRunner};
use biodist_dprml::build_problem;
use biodist_gridsim::deployments::homogeneous_lab;
use biodist_util::table::Table;

const MACHINES: usize = 40;

fn run(instances: usize) -> (f64, f64) {
    let (data, config) = fig2_inputs();
    let mut server = Server::new(SchedulerConfig {
        target_unit_secs: 10.0,
        ..Default::default()
    });
    for i in 0..instances {
        server.submit(build_problem(
            data.clone(),
            &config,
            None,
            &format!("inst-{i}"),
        ));
    }
    let machines = homogeneous_lab(MACHINES, SEED + 2);
    let (report, _) = SimRunner::with_defaults(server, machines).run();
    (report.makespan, report.mean_utilization)
}

fn main() {
    eprintln!("A1: DPRml stage-barrier idling, {MACHINES} machines, varying instance count");
    // Single-instance single-machine run: the per-instance serial time.
    let (data, config) = fig2_inputs();
    let mut server = Server::new(SchedulerConfig::default());
    server.submit(build_problem(data, &config, None, "baseline"));
    let (baseline, _) = SimRunner::with_defaults(server, homogeneous_lab(1, SEED + 2)).run();
    let t_serial = baseline.makespan;
    eprintln!("  per-instance serial time: {t_serial:.1} s");

    let mut table = Table::new(
        "A1: simultaneous DPRml instances vs pool efficiency (40 machines)",
        &[
            "instances",
            "makespan_s",
            "aggregate_speedup",
            "pool_efficiency",
            "utilization",
        ],
    );
    for &k in &[1usize, 2, 4, 6, 8] {
        let (makespan, util) = run(k);
        // Aggregate speedup: useful serial work delivered per unit time.
        let agg = k as f64 * t_serial / makespan;
        let eff = agg / MACHINES as f64;
        eprintln!("  {k} instances: makespan {makespan:>9.1}, aggregate speedup {agg:.1}");
        table.push_numeric_row(&[k as f64, makespan, agg, eff, util], 3);
    }
    println!("{}", table.render_text());
    let path = results_dir().join("abl_dprml_instances.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
