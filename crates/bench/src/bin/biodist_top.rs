//! Live cluster status view — the ops plane's `top`.
//!
//! Three modes:
//!
//! ```text
//! # deterministic post-run snapshot from the simulator backend
//! biodist_top sim [--app dsearch|dprml] [--seed N] [--machines M] [--json]
//!
//! # seeded TCP loopback demo: spawn a server + donors with metrics
//! # shipping on, then poll StatusRequest over a real socket
//! biodist_top demo [--app dsearch|dprml] [--seed N] [--machines M]
//!                  [--once | --watch] [--interval S] [--time-scale X] [--json]
//!
//! # poll a running NetServer
//! biodist_top connect --addr HOST:PORT [--once | --watch] [--interval S] [--json]
//! ```
//!
//! `--once` prints a single snapshot and exits (with `--json`, the
//! deterministic [`StatusSnapshot::to_json`] schema the ops-smoke CI
//! job checks); `--watch` redraws a `top`-style board every interval
//! until the cluster drains. Snapshots travel as `StatusRequest` /
//! `StatusReport` wire frames, so `connect` works against any live
//! server, and `demo` exercises the exact same path end-to-end on a
//! loopback cluster.

use biodist_bench::workloads::{demo_dprml_server_with, demo_dsearch_server_with};
use biodist_core::fault::FaultPlan;
use biodist_core::net::wire::{encode_frame, Frame, FrameReader, ReadError};
use biodist_core::net::{spawn_clients, ClientKit, Clock};
use biodist_core::{
    NetClientOptions, NetServer, NetServerOptions, SchedulerConfig, Server, SimConfig, SimRunner,
    StatusSnapshot, Telemetry,
};
use std::io::Write as _;
use std::net::{SocketAddr, TcpStream};
use std::process::exit;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage:\n  biodist_top sim [--app dsearch|dprml] [--seed N] [--machines M] [--json]\n  \
         biodist_top demo [--app dsearch|dprml] [--seed N] [--machines M] [--once|--watch] [--interval S] [--time-scale X] [--json]\n  \
         biodist_top connect --addr HOST:PORT [--once|--watch] [--interval S] [--json]"
    );
    exit(1);
}

/// Value of `--name` in `args`, if present.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn has(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("sim") => sim(&args[1..]),
        Some("demo") => demo(&args[1..]),
        Some("connect") => connect(&args[1..]),
        _ => usage(),
    }
}

fn build_server(app: &str, seed: u64) -> Server {
    // The ops plane on: live straggler detection feeds the snapshot's
    // flag/ratio columns.
    let arm = |cfg: &mut SchedulerConfig| cfg.enable_health_detector = true;
    let mut server = match app {
        "dsearch" => demo_dsearch_server_with(seed, arm),
        "dprml" => demo_dprml_server_with(seed, arm),
        other => {
            eprintln!("unknown app `{other}` (want dsearch or dprml)");
            exit(1);
        }
    };
    server.set_telemetry(Telemetry::enabled());
    server
}

// ------------------------------------------------------------- sim mode

fn sim(args: &[String]) {
    let app = flag(args, "--app").unwrap_or_else(|| "dsearch".into());
    let seed: u64 = flag(args, "--seed").map_or(7, |s| s.parse().expect("--seed"));
    let machines: usize = flag(args, "--machines").map_or(8, |s| s.parse().expect("--machines"));
    let server = build_server(&app, seed);
    let pool = biodist_gridsim::deployments::homogeneous_lab(machines, seed);
    let cfg = SimConfig {
        metrics_report_secs: 5.0,
        ..Default::default()
    };
    let runner = SimRunner::new(
        server,
        pool,
        biodist_gridsim::network::SharedLink::hundred_mbit(),
        cfg,
    );
    let (run, server) = runner.run();
    let snap = server.status_snapshot(run.makespan);
    render(&snap, has(args, "--json"), false);
}

// ------------------------------------------------------------ demo mode

fn demo(args: &[String]) {
    let app = flag(args, "--app").unwrap_or_else(|| "dsearch".into());
    let seed: u64 = flag(args, "--seed").map_or(7, |s| s.parse().expect("--seed"));
    let machines: usize = flag(args, "--machines").map_or(4, |s| s.parse().expect("--machines"));
    let interval: f64 = flag(args, "--interval").map_or(0.5, |s| s.parse().expect("--interval"));
    let time_scale: f64 =
        flag(args, "--time-scale").map_or(20.0, |s| s.parse().expect("--time-scale"));
    let once = has(args, "--once") || !has(args, "--watch");
    let json = has(args, "--json");

    let server = build_server(&app, seed);
    let telemetry = server.telemetry();
    let kit = ClientKit::from_server(&server).expect("demo problems carry codecs");
    let clock = Clock::new(time_scale);
    let net = NetServer::start(server, clock, NetServerOptions::default())
        .expect("bind loopback listener");
    let addr = net.addr();
    let run_over = Arc::new(AtomicBool::new(false));
    let handles = spawn_clients(
        biodist_core::Directory::with_origin(addr),
        clock,
        kit,
        machines,
        &FaultPlan::none(),
        run_over.clone(),
        NetClientOptions {
            metrics_report_interval: 2.0,
            ..Default::default()
        },
    );

    if once {
        // Poll until the cluster has visibly started (a donor row and a
        // completed unit), then print that snapshot once.
        let snap = loop {
            std::thread::sleep(Duration::from_millis(50));
            let Some(snap) = poll_status(addr) else {
                continue;
            };
            let started =
                !snap.donors.is_empty() && snap.problems.iter().any(|p| p.completed_units > 0);
            let drained = snap.problems.iter().all(|p| p.done);
            if started || drained {
                break snap;
            }
        };
        render(&snap, json, false);
        net.kill();
    } else {
        loop {
            std::thread::sleep(Duration::from_secs_f64(interval));
            let Some(snap) = poll_status(addr) else {
                break; // server drained and took itself down
            };
            render(&snap, json, true);
            if snap.problems.iter().all(|p| p.done) {
                break;
            }
        }
        let server = net.wait();
        let snap = server.status_snapshot(clock.now());
        render(&snap, json, false);
    }
    run_over.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    telemetry.flush();
}

// --------------------------------------------------------- connect mode

fn connect(args: &[String]) {
    let addr: SocketAddr = flag(args, "--addr")
        .unwrap_or_else(|| usage())
        .parse()
        .expect("--addr HOST:PORT");
    let interval: f64 = flag(args, "--interval").map_or(1.0, |s| s.parse().expect("--interval"));
    let watch = has(args, "--watch");
    let json = has(args, "--json");
    loop {
        let Some(snap) = poll_status(addr) else {
            eprintln!("no status from {addr}");
            exit(1);
        };
        render(&snap, json, watch);
        if !watch || snap.problems.iter().all(|p| p.done) {
            return;
        }
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}

// -------------------------------------------------------------- polling

/// One status round-trip: connect, `StatusRequest`, await the
/// `StatusReport`. `None` when the server is unreachable or gone.
fn poll_status(addr: SocketAddr) -> Option<StatusSnapshot> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    stream
        .write_all(&encode_frame(&Frame::StatusRequest))
        .ok()?;
    let mut reader = FrameReader::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if std::time::Instant::now() > deadline {
            return None;
        }
        match reader.poll(&mut stream) {
            Ok(Some(Frame::StatusReport { snapshot })) => {
                return StatusSnapshot::from_wire_bytes(&snapshot).ok();
            }
            Ok(Some(_)) | Ok(None) => {}
            Err(ReadError::Decode(_)) => {}
            Err(ReadError::Io(_)) => return None,
        }
    }
}

// ------------------------------------------------------------ rendering

fn render(snap: &StatusSnapshot, json: bool, clear: bool) {
    if json {
        println!("{}", snap.to_json());
        return;
    }
    let mut out = String::new();
    if clear {
        out.push_str("\x1b[2J\x1b[H");
    }
    let flagged = snap.donors.iter().filter(|d| d.flagged).count();
    let done = snap.problems.iter().filter(|p| p.done).count();
    out.push_str(&format!(
        "biodist_top — t={:.1}s   donors {} ({} flagged)   problems {}/{} done\n\n",
        snap.now,
        snap.donors.len(),
        flagged,
        done,
        snap.problems.len(),
    ));
    out.push_str("CLIENT      OPS/S   UNITS  LEASES  TRUST  AGREE  DISPUTE  FLAG   RATIO\n");
    for d in &snap.donors {
        out.push_str(&format!(
            "{:>6}  {:>9.3e}  {:>5}  {:>6}  {:>5}  {:>5}  {:>7}  {:>4}  {:>6.2}\n",
            d.client,
            d.ops_per_sec,
            d.units_completed,
            d.leases,
            if d.trusted { "yes" } else { "no" },
            d.agreements,
            d.disputes,
            if d.flagged { "FLAG" } else { "-" },
            d.health_ratio,
        ));
    }
    out.push_str("\nPROBLEM  NAME                  DONE   UNITS  ASSIGN  INFLIGHT  REISSUE\n");
    for p in &snap.problems {
        out.push_str(&format!(
            "{:>7}  {:<20}  {:>4}  {:>6}  {:>6}  {:>8}  {:>7}\n",
            p.problem,
            p.name,
            if p.done { "yes" } else { "no" },
            p.completed_units,
            p.assignments,
            p.in_flight,
            p.reissue_queue,
        ));
    }
    out.push('\n');
    for (k, v) in &snap.counters {
        out.push_str(&format!("{k} = {v}\n"));
    }
    let mut stdout = std::io::stdout().lock();
    let _ = stdout.write_all(out.as_bytes());
    let _ = stdout.flush();
}
