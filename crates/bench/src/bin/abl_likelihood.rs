//! Ablation A6 — DPRml likelihood kernel backends: stage-evaluation
//! throughput.
//!
//! PR 1 measured the DSEARCH alignment kernels (`abl_kernels`); this is
//! the companion tier for DPRml's Felsenstein-pruning kernels. The
//! workload is exactly the work-unit computation a DPRml *stage* fans
//! out: insert the next taxon into every edge of the current base tree
//! (`evaluate_insertion`, local-candidate branch optimisation), one
//! engine per stage so the transition-matrix cache behaves as it does
//! inside `DprmlAlgo::compute`.
//!
//! Run with: `cargo run -p biodist-bench --release --bin abl_likelihood`
//! for the per-model × per-backend table (`results/abl_likelihood.csv`);
//! `--smoke` measures the default stage workload only and writes
//! `BENCH_likelihood.json` at the workspace root — the measurement
//! behind DPRml's `OPS_PER_NODE_UPDATE` cost recalibration.

use biodist_bench::harness::results_dir;
use biodist_bench::Runner;
use biodist_phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist_phylo::lik::TreeLikelihood;
use biodist_phylo::lik_simd::LikBackend;
use biodist_phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist_phylo::patterns::PatternAlignment;
use biodist_phylo::search::{evaluate_insertion, SearchOptions};
use biodist_phylo::tree::Tree;
use biodist_util::table::Table;

/// Taxa in the base tree; the stage inserts taxon `BASE_TAXA`.
const BASE_TAXA: usize = 16;
const SITES: usize = 600;
const SEED: u64 = 46;

struct StageWorkload {
    data: PatternAlignment,
    base: Tree,
    next_taxon: usize,
}

fn stage_workload(model: &SubstModel) -> StageWorkload {
    let truth = random_yule_tree(BASE_TAXA + 1, 0.12, SEED);
    let seqs = simulate_alignment(&truth, model, SITES, None, SEED + 1);
    let data = PatternAlignment::from_sequences(&seqs);
    // Deterministic base tree over taxa 0..BASE_TAXA, mirroring the
    // stepwise-insertion state a mid-run DPRml stage sees.
    let mut base = Tree::initial_triple([0, 1, 2], 0.1);
    for t in 3..BASE_TAXA {
        let edges = base.edges();
        let e = edges[(t * 7) % edges.len()];
        base.insert_leaf(e, t, 0.1);
    }
    StageWorkload {
        data,
        base,
        next_taxon: BASE_TAXA,
    }
}

/// Measures one full stage evaluation (every candidate edge) under
/// `backend`; returns nominal node-updates per second.
fn measure_stage(
    runner: &mut Runner,
    label: &str,
    model: &SubstModel,
    wl: &StageWorkload,
    backend: LikBackend,
) -> f64 {
    let engine = TreeLikelihood::with_backend(model, &wl.data, backend);
    let opts = SearchOptions::default();
    let edges = wl.base.edges();
    // Nominal work: one pruning traversal of the candidate tree per
    // candidate edge. The same count is charged to every backend, so
    // ratios are exact even though the SIMD path does fewer raw flops.
    let node_updates = engine.traversal_cost(&wl.base) * edges.len() as u64;
    let m = runner.run(label, Some(node_updates), || {
        edges
            .iter()
            .map(|&e| evaluate_insertion(&wl.base, wl.next_taxon, e, &engine, &opts).ln_likelihood)
            .sum::<f64>()
    });
    m.elems_per_sec().expect("elements declared")
}

fn smoke() -> String {
    let model = SubstModel::homogeneous(ModelKind::Hky85 {
        kappa: 4.0,
        freqs: [0.25; 4],
    });
    let wl = stage_workload(&model);
    let mut runner = Runner::new();
    let mut rates: Vec<(LikBackend, f64)> = Vec::new();
    for backend in LikBackend::supported() {
        let rate = measure_stage(
            &mut runner,
            &format!("stage_eval/{}", backend.name()),
            &model,
            &wl,
            backend,
        );
        rates.push((backend, rate));
    }
    runner.report(&format!(
        "abl_likelihood --smoke: insert taxon {} into every edge of a {BASE_TAXA}-taxon tree, {SITES} sites hky85",
        wl.next_taxon
    ));

    let scalar = rates
        .iter()
        .find(|(b, _)| *b == LikBackend::Scalar)
        .expect("scalar baseline")
        .1;
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": \"stage evaluation: insert taxon {} into every edge of a {BASE_TAXA}-taxon base tree, {SITES} sites, hky85 kappa=4, local candidates, {} optimisation rounds\",\n",
        wl.next_taxon,
        SearchOptions::default().candidate_rounds
    ));
    json.push_str(&format!(
        "  \"detected\": \"{}\",\n",
        LikBackend::detect().name()
    ));
    json.push_str("  \"backends\": {\n");
    for (i, (backend, rate)) in rates.iter().enumerate() {
        let sep = if i + 1 == rates.len() { "" } else { "," };
        json.push_str(&format!(
            "    \"{}\": {{ \"node_updates_per_sec\": {rate:.0}, \"speedup_vs_scalar\": {:.2} }}{sep}\n",
            backend.name(),
            rate / scalar
        ));
    }
    json.push_str("  }\n}\n");

    let best = rates
        .iter()
        .find(|(b, _)| *b == LikBackend::detect())
        .unwrap_or(rates.last().expect("nonempty"));
    println!(
        "likelihood {} vs scalar: {:.1}x ({:.0} vs {:.0} node updates/s)",
        best.0.name(),
        best.1 / scalar,
        best.1,
        scalar
    );
    json
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        let json = smoke();
        // results_dir() is `<workspace>/results`; the JSON snapshot
        // lives next to it at the workspace root.
        let path = results_dir().join("..").join("BENCH_likelihood.json");
        std::fs::write(&path, json).expect("write BENCH_likelihood.json");
        println!("wrote {}", path.display());
        return;
    }

    let models = [
        (
            "hky85",
            SubstModel::homogeneous(ModelKind::Hky85 {
                kappa: 4.0,
                freqs: [0.25; 4],
            }),
        ),
        (
            "gtr_gamma4",
            SubstModel::new(
                ModelKind::Gtr {
                    rates: [1.0, 2.5, 0.8, 1.1, 3.0, 1.0],
                    freqs: [0.3, 0.2, 0.2, 0.3],
                },
                GammaRates::gamma(0.5, 4),
            ),
        ),
    ];

    let mut runner = Runner::new();
    let mut table = Table::new(
        "A6: DPRml likelihood backends (stage evaluation)",
        &[
            "model",
            "backend",
            "node_updates_per_sec",
            "speedup_vs_scalar",
        ],
    );
    for (model_name, model) in &models {
        let wl = stage_workload(model);
        let mut scalar_rate = None;
        for backend in LikBackend::supported() {
            let rate = measure_stage(
                &mut runner,
                &format!("stage_eval/{model_name}/{}", backend.name()),
                model,
                &wl,
                backend,
            );
            let scalar = *scalar_rate.get_or_insert(rate);
            eprintln!(
                "  {model_name:>10} / {:>8}: {:>12.0} node updates/s ({:.1}x)",
                backend.name(),
                rate,
                rate / scalar
            );
            table.push_row(vec![
                model_name.to_string(),
                backend.name().to_string(),
                format!("{rate:.0}"),
                format!("{:.2}", rate / scalar),
            ]);
        }
    }
    runner.report("A6: likelihood backends, stage-evaluation workload");
    let path = results_dir().join("abl_likelihood.csv");
    table.write_csv(&path).expect("write csv");
    println!("wrote {}", path.display());
}
