//! B3 — framework overhead micro-benchmarks.
//!
//! Event-queue throughput, server dispatch latency, and a complete
//! small simulated run. These bound the scheduling overhead that the
//! speedup figures implicitly include.

use biodist_core::builtin::integration_problem;
use biodist_core::{Assignment, SchedulerConfig, Server, SimRunner};
use biodist_gridsim::deployments::homogeneous_lab;
use biodist_gridsim::event::EventQueue;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Scatter times so the heap actually reorders.
                q.schedule(((i * 2_654_435_761) % 1_000_003) as f64, i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    group.finish();
}

fn bench_server_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("request_submit_1k_units", |b| {
        b.iter(|| {
            let mut server = Server::new(SchedulerConfig {
                target_unit_secs: 1.0,
                prior_ops_per_sec: 200_000.0, // 1000 points/unit
                ..Default::default()
            });
            server.submit(integration_problem(1_000_000));
            let mut now = 0.0;
            loop {
                match server.request_work(0, now) {
                    Assignment::Unit { problem, unit, algorithm } => {
                        let r = algorithm.compute(&unit);
                        now += 1.0;
                        server.submit_result(0, problem, r, now);
                    }
                    Assignment::Wait => now += 1.0,
                    Assignment::Finished => break,
                }
            }
            server
        })
    });
    group.finish();
}

fn bench_full_sim(c: &mut Criterion) {
    c.bench_function("sim_run_16_machines", |b| {
        b.iter(|| {
            let mut server = Server::new(SchedulerConfig::default());
            server.submit(integration_problem(2_000_000));
            let machines = homogeneous_lab(16, 5);
            SimRunner::with_defaults(server, machines).run()
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_server_dispatch, bench_full_sim);
criterion_main!(benches);
