//! B3 — framework overhead micro-benchmarks.
//!
//! Event-queue throughput, server dispatch latency, and a complete
//! small simulated run. These bound the scheduling overhead that the
//! speedup figures implicitly include.
//!
//! Run with: `cargo bench -p biodist-bench --bench framework`

use biodist_bench::Runner;
use biodist_core::builtin::integration_problem;
use biodist_core::{Assignment, SchedulerConfig, Server, SimRunner};
use biodist_gridsim::deployments::homogeneous_lab;
use biodist_gridsim::event::EventQueue;

fn main() {
    let mut r = Runner::new();

    r.run("event_queue/schedule_pop_10k", Some(10_000), || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // Scatter times so the heap actually reorders.
            q.schedule(((i * 2_654_435_761) % 1_000_003) as f64, i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    r.run("server/request_submit_1k_units", Some(1_000), || {
        let mut server = Server::new(SchedulerConfig {
            target_unit_secs: 1.0,
            prior_ops_per_sec: 200_000.0, // 1000 points/unit
            ..Default::default()
        });
        server.submit(integration_problem(1_000_000));
        let mut now = 0.0;
        loop {
            match server.request_work(0, now) {
                Assignment::Unit {
                    problem,
                    unit,
                    algorithm,
                } => {
                    let res = algorithm.compute(&unit);
                    now += 1.0;
                    server.submit_result(0, problem, res, now);
                }
                Assignment::Wait => now += 1.0,
                Assignment::Finished => break,
            }
        }
        server
    });

    r.run("sim_run_16_machines", None, || {
        let mut server = Server::new(SchedulerConfig::default());
        server.submit(integration_problem(2_000_000));
        let machines = homogeneous_lab(16, 5);
        SimRunner::with_defaults(server, machines).run()
    });

    r.report("B3: framework overhead");
}
