//! B1 — alignment kernel micro-benchmarks.
//!
//! Throughput of the rigorous kernels DSEARCH can select, over a length
//! sweep, including the striped SIMD kernel both cold (profile built
//! per pair) and hot (profile reused, the DSEARCH batch path).
//! Regenerates the per-kernel cost ratios that the DSEARCH cost model
//! (`AlignKernel::cost_cells`) assumes.
//!
//! Run with: `cargo bench -p biodist-bench --bench align_kernels`

use biodist_align::{
    nw_align, nw_banded_score, nw_score, sw_align, sw_score, sw_score_antidiagonal,
    sw_score_striped, sw_score_striped_profiled, QueryProfile,
};
use biodist_bench::Runner;
use biodist_bioseq::synth::random_sequence;
use biodist_bioseq::{Alphabet, ScoringScheme, Sequence};

fn pair(len: usize) -> (Sequence, Sequence) {
    (
        random_sequence(Alphabet::Protein, "a", len, 1),
        random_sequence(Alphabet::Protein, "b", len, 2),
    )
}

fn main() {
    let scheme = ScoringScheme::protein_default();
    let mut r = Runner::new();

    for len in [64usize, 256, 512] {
        let (a, b) = pair(len);
        let cells = Some((len * len) as u64);
        r.run(&format!("score_kernels/nw_score/{len}"), cells, || {
            nw_score(&a, &b, &scheme)
        });
        r.run(&format!("score_kernels/sw_score/{len}"), cells, || {
            sw_score(&a, &b, &scheme)
        });
        r.run(
            &format!("score_kernels/sw_antidiagonal/{len}"),
            cells,
            || sw_score_antidiagonal(&a, &b, &scheme),
        );
        r.run(&format!("score_kernels/sw_striped/{len}"), cells, || {
            sw_score_striped(&a, &b, &scheme)
        });
        let profile = QueryProfile::build(&a, &scheme.matrix);
        r.run(
            &format!("score_kernels/sw_striped_profiled/{len}"),
            cells,
            || sw_score_striped_profiled(&profile, &b, &scheme.gap),
        );
        r.run(&format!("score_kernels/nw_banded_16/{len}"), cells, || {
            nw_banded_score(&a, &b, &scheme, 16)
        });
    }

    let (a, b) = pair(256);
    let cells = Some(256u64 * 256);
    r.run("traceback_kernels/nw_align/256", cells, || {
        nw_align(&a, &b, &scheme)
    });
    r.run("traceback_kernels/sw_align/256", cells, || {
        sw_align(&a, &b, &scheme)
    });

    r.report("B1: alignment kernel throughput (elements = DP cells)");
}
