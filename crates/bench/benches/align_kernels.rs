//! B1 — alignment kernel micro-benchmarks.
//!
//! Throughput of the four rigorous kernels DSEARCH can select, over a
//! length sweep. Regenerates the per-kernel cost ratios that the
//! DSEARCH cost model (`AlignKernel::cost_cells`) assumes.

use biodist_align::{nw_align, nw_banded_score, nw_score, sw_align, sw_score, sw_score_antidiagonal};
use biodist_bioseq::synth::random_sequence;
use biodist_bioseq::{Alphabet, ScoringScheme, Sequence};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn pair(len: usize) -> (Sequence, Sequence) {
    (
        random_sequence(Alphabet::Protein, "a", len, 1),
        random_sequence(Alphabet::Protein, "b", len, 2),
    )
}

fn bench_score_kernels(c: &mut Criterion) {
    let scheme = ScoringScheme::protein_default();
    let mut group = c.benchmark_group("score_kernels");
    for len in [64usize, 256, 512] {
        let (a, b) = pair(len);
        group.throughput(Throughput::Elements((len * len) as u64));
        group.bench_with_input(BenchmarkId::new("nw_score", len), &len, |bch, _| {
            bch.iter(|| nw_score(&a, &b, &scheme))
        });
        group.bench_with_input(BenchmarkId::new("sw_score", len), &len, |bch, _| {
            bch.iter(|| sw_score(&a, &b, &scheme))
        });
        group.bench_with_input(BenchmarkId::new("sw_antidiagonal", len), &len, |bch, _| {
            bch.iter(|| sw_score_antidiagonal(&a, &b, &scheme))
        });
        group.bench_with_input(BenchmarkId::new("nw_banded_16", len), &len, |bch, _| {
            bch.iter(|| nw_banded_score(&a, &b, &scheme, 16))
        });
    }
    group.finish();
}

fn bench_traceback_kernels(c: &mut Criterion) {
    let scheme = ScoringScheme::protein_default();
    let (a, b) = pair(256);
    let mut group = c.benchmark_group("traceback_kernels");
    group.throughput(Throughput::Elements((256 * 256) as u64));
    group.bench_function("nw_align", |bch| bch.iter(|| nw_align(&a, &b, &scheme)));
    group.bench_function("sw_align", |bch| bch.iter(|| sw_align(&a, &b, &scheme)));
    group.finish();
}

criterion_group!(benches, bench_score_kernels, bench_traceback_kernels);
criterion_main!(benches);
