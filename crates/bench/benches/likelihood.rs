//! B2 — likelihood engine micro-benchmarks.
//!
//! Throughput of the Felsenstein-pruning traversal and of branch-length
//! optimisation across model complexity (JC69 vs GTR+Γ4) and tree size.
//! Regenerates the cost ratios that DPRml's cost model
//! (`traversal_ops`) assumes.

use biodist_phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist_phylo::lik::TreeLikelihood;
use biodist_phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist_phylo::patterns::PatternAlignment;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn workload(n_taxa: usize, sites: usize, model: &SubstModel, seed: u64) -> PatternAlignment {
    let tree = random_yule_tree(n_taxa, 0.1, seed);
    let seqs = simulate_alignment(&tree, model, sites, None, seed + 1);
    PatternAlignment::from_sequences(&seqs)
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruning");
    for (name, model) in [
        ("jc69", SubstModel::homogeneous(ModelKind::Jc69)),
        (
            "gtr_gamma4",
            SubstModel::new(
                ModelKind::Gtr { rates: [1.0, 2.5, 0.8, 1.1, 3.0, 1.0], freqs: [0.3, 0.2, 0.2, 0.3] },
                GammaRates::gamma(0.5, 4),
            ),
        ),
    ] {
        for n_taxa in [10usize, 30] {
            let data = workload(n_taxa, 300, &model, 7);
            let tree = random_yule_tree(n_taxa, 0.1, 7);
            let engine = TreeLikelihood::new(&model, &data);
            group.throughput(Throughput::Elements(engine.traversal_cost(&tree)));
            group.bench_with_input(
                BenchmarkId::new(name, n_taxa),
                &n_taxa,
                |bch, _| bch.iter(|| engine.log_likelihood(&tree)),
            );
        }
    }
    group.finish();
}

fn bench_branch_optimisation(c: &mut Criterion) {
    let model = SubstModel::homogeneous(ModelKind::Hky85 { kappa: 4.0, freqs: [0.25; 4] });
    let data = workload(12, 200, &model, 9);
    let tree = random_yule_tree(12, 0.1, 9);
    let engine = TreeLikelihood::new(&model, &data);
    c.bench_function("optimize_all_branches_1_round", |bch| {
        bch.iter(|| {
            let mut t = tree.clone();
            engine.optimize_edges(&mut t, None, 1, 1e-3)
        })
    });
}

fn bench_pattern_compression(c: &mut Criterion) {
    let model = SubstModel::homogeneous(ModelKind::Jc69);
    let tree = random_yule_tree(40, 0.1, 3);
    let seqs = simulate_alignment(&tree, &model, 1000, None, 4);
    c.bench_function("pattern_compression_40x1000", |bch| {
        bch.iter(|| PatternAlignment::from_sequences(&seqs))
    });
}

criterion_group!(benches, bench_pruning, bench_branch_optimisation, bench_pattern_compression);
criterion_main!(benches);
