//! B2 — likelihood engine micro-benchmarks.
//!
//! Throughput of the Felsenstein-pruning traversal and of branch-length
//! optimisation across model complexity (JC69 vs GTR+Γ4), tree size,
//! and every SIMD kernel backend the CPU supports. Regenerates the
//! cost ratios that DPRml's cost model (`traversal_ops`) assumes; the
//! stage-level speedups live in `abl_likelihood`.
//!
//! Run with: `cargo bench -p biodist-bench --bench likelihood`

use biodist_bench::Runner;
use biodist_phylo::evolve::{random_yule_tree, simulate_alignment};
use biodist_phylo::lik::TreeLikelihood;
use biodist_phylo::lik_simd::LikBackend;
use biodist_phylo::model::{GammaRates, ModelKind, SubstModel};
use biodist_phylo::patterns::PatternAlignment;

fn workload(n_taxa: usize, sites: usize, model: &SubstModel, seed: u64) -> PatternAlignment {
    let tree = random_yule_tree(n_taxa, 0.1, seed);
    let seqs = simulate_alignment(&tree, model, sites, None, seed + 1);
    PatternAlignment::from_sequences(&seqs)
}

fn main() {
    let mut r = Runner::new();

    for (name, model) in [
        ("jc69", SubstModel::homogeneous(ModelKind::Jc69)),
        (
            "gtr_gamma4",
            SubstModel::new(
                ModelKind::Gtr {
                    rates: [1.0, 2.5, 0.8, 1.1, 3.0, 1.0],
                    freqs: [0.3, 0.2, 0.2, 0.3],
                },
                GammaRates::gamma(0.5, 4),
            ),
        ),
    ] {
        for n_taxa in [10usize, 30] {
            let data = workload(n_taxa, 300, &model, 7);
            let tree = random_yule_tree(n_taxa, 0.1, 7);
            for backend in LikBackend::supported() {
                let engine = TreeLikelihood::with_backend(&model, &data, backend);
                let ops = Some(engine.traversal_cost(&tree));
                r.run(
                    &format!("pruning/{name}/{n_taxa}/{}", backend.name()),
                    ops,
                    || engine.log_likelihood(&tree),
                );
            }
        }
    }

    let model = SubstModel::homogeneous(ModelKind::Hky85 {
        kappa: 4.0,
        freqs: [0.25; 4],
    });
    let data = workload(12, 200, &model, 9);
    let tree = random_yule_tree(12, 0.1, 9);
    for backend in LikBackend::supported() {
        let engine = TreeLikelihood::with_backend(&model, &data, backend);
        r.run(
            &format!("optimize_all_branches_1_round/{}", backend.name()),
            None,
            || {
                let mut t = tree.clone();
                engine.optimize_edges(&mut t, None, 1, 1e-3)
            },
        );
    }

    let model = SubstModel::homogeneous(ModelKind::Jc69);
    let tree = random_yule_tree(40, 0.1, 3);
    let seqs = simulate_alignment(&tree, &model, 1000, None, 4);
    r.run("pattern_compression_40x1000", None, || {
        PatternAlignment::from_sequences(&seqs)
    });

    r.report("B2: likelihood engine throughput (elements = traversal ops)");
}
