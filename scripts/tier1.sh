#!/usr/bin/env sh
# Tier-1 verification: the exact gate every PR must keep green
# (see ROADMAP.md). Fully offline — the workspace has no external
# dependencies and Cargo.lock is committed.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

# Run the net-loopback suites by name so the gate fails loudly if they
# are ever filtered out of the default run (disabled test target,
# harness config drift) instead of passing vacuously: the TCP chaos
# sweep through the fault proxy, the kill-and-restart checkpoint
# recovery, the 24-donor stress soak with its ≥90% second-pass
# cache-reduction assertion, the Byzantine quorum tier (100-seed
# sim sweeps per application plus thread/TCP sweeps and the K=1
# negative control), the replica-tier acceptance runs (failover
# through killed/stalled replicas against the sequential digest), and
# the ops-plane suite (wire-correlated four-phase spans, donor metrics
# shipping into the live status view, and the straggler-detector
# acceptance scenario on both the simulator and loopback TCP), and
# the scale tier (the 1k-donor sharded event-loop soak with
# exactly-once audit, O(shards) thread count, and the deterministic
# work-steal case).
cargo test -q --offline --test chaos tcp
cargo test -q --offline --test net_recovery
cargo test -q --offline --test stress
cargo test -q --offline --test byzantine
cargo test -q --offline --test replica
cargo test -q --offline --test ops
cargo test -q --offline --test scale

echo "tier1: OK"
