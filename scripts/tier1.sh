#!/usr/bin/env sh
# Tier-1 verification: the exact gate every PR must keep green
# (see ROADMAP.md). Fully offline — the workspace has no external
# dependencies and Cargo.lock is committed.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

echo "tier1: OK"
